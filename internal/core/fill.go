package core

import (
	"fmt"
)

// FillAlgo selects the algorithm that fills one row of the DP error matrix
// E[k] given row E[k−1]. All algorithms produce bitwise-identical E and J
// rows — they share the CostKernel's merge-cost arithmetic and the same
// rightmost-argmin tie handling — and differ only in how many candidate
// split points they evaluate:
//
//   - FillPruned scans candidates right to left with the Jagadish-style
//     early exit (the merge cost grows as the split moves left, so the scan
//     stops once it alone exceeds the best total). Worst case O(n) per
//     cell, O(n²) per row; in practice often far less.
//   - FillDC exploits that inside a monotone segment — a maximal stretch
//     with per-dimension monotone values, certified piecewise by
//     CostKernel.MonotoneSegments — the weighted SSE merge cost satisfies
//     the concave quadrangle inequality, so optimal in-segment split
//     points are monotone across the segment's cells: divide and conquer
//     evaluates O(m log m) in-segment candidates for a segment of m cells.
//   - FillSMAWK applies the SMAWK row-minima algorithm to the same
//     totally monotone candidate matrix: O(m) candidate evaluations per
//     segment, the asymptotic optimum.
//   - FillOnline maintains a concave candidate frontier incrementally as
//     cells are answered left to right (segOnline): O(1) amortized
//     evaluations per cell plus one O(log m) crossover search per
//     candidate, without ever consulting candidates that have not arrived
//     yet — the fill of the incremental Solver and the streaming exact-DP
//     path.
//
// Dispatch is per segment, not all-or-nothing: every row's cells are
// partitioned by the kernel's piecewise-monotone segmentation, segments of
// at least fillSegmentMin rows run the selected monotone fill over their
// in-segment candidates and then complete each cell over the remaining
// out-of-segment candidates (where the quadrangle inequality genuinely
// fails — e.g. values 0, 100, 0) with the envelope-pruned scan: a blocked
// right-to-left scan that discards whole candidate blocks in O(1) against
// a progressive lower envelope of min(prevE)+MergeErr (envComplete).
// Shorter segments run the same envelope-pruned scan over their windows.
// Mixed-shape series therefore get the monotone speedup on their monotone
// stretches instead of losing it to a single direction change; results are
// identical for every selection on every input.
// FillAuto (the zero value) picks FillPruned below fillAutoThreshold rows
// and FillDC at or above it — except for the pruning-ablation modes, whose
// scan-work measurements auto never replaces.
type FillAlgo uint8

const (
	// FillAuto selects the algorithm by input size (the default).
	FillAuto FillAlgo = iota
	// FillPruned is the i*/j′-pruned right-to-left candidate scan.
	FillPruned
	// FillDC is the monotone divide-and-conquer row fill.
	FillDC
	// FillSMAWK is the SMAWK totally-monotone row-minima fill.
	FillSMAWK
	// FillOnline is the incremental concave-frontier fill: cells are
	// answered strictly left to right while a per-segment candidate
	// frontier is maintained as split points become available. It is the
	// fill the incremental core.Solver auto-selects (and the streaming
	// exact-DP path uses), since its per-cell work does not depend on
	// seeing the whole row's candidate set up front.
	FillOnline
)

// fillAutoThreshold is the input size at which FillAuto switches from the
// pruned scan to the monotone divide-and-conquer fill (on series the kernel
// certifies; everything else scans regardless). On certified workloads the
// measured crossover is far below this — FillDC already wins ~2× at n = 64
// and ~40× at n = 8192 — so the threshold only keeps the certification scan
// and recursion off inputs too small to care. The `fill` experiment records
// the trajectory.
const fillAutoThreshold = 256

// fillSegmentMin is the smallest monotone segment the per-segment dispatch
// hands to a monotone fill; shorter segments use the pruned scan for their
// cells. The monotone fills win asymptotically, so the bound only keeps
// recursion/arena setup and the per-cell completion probe off stretches too
// short to repay them — oscillating noise decomposes into segments of two
// or three rows, which the scan handles in as many candidate evaluations.
// CostKernel.MonotoneCoverage reports the row fraction above this bound.
const fillSegmentMin = 16

// String names the algorithm; the names round-trip through ParseFillAlgo.
func (a FillAlgo) String() string {
	switch a {
	case FillAuto:
		return "auto"
	case FillPruned:
		return "pruned"
	case FillDC:
		return "dc"
	case FillSMAWK:
		return "smawk"
	case FillOnline:
		return "online"
	}
	return fmt.Sprintf("fill(%d)", uint8(a))
}

// ParseFillAlgo resolves a row-fill algorithm name ("auto", "pruned", "dc",
// "smawk" or "online").
func ParseFillAlgo(s string) (FillAlgo, error) {
	switch s {
	case "", "auto":
		return FillAuto, nil
	case "pruned":
		return FillPruned, nil
	case "dc":
		return FillDC, nil
	case "smawk":
		return FillSMAWK, nil
	case "online":
		return FillOnline, nil
	}
	return FillAuto, fmt.Errorf("core: unknown fill algorithm %q (have %v)", s, FillAlgoNames())
}

// FillAlgoNames lists the recognized fill-algorithm names in definition
// order.
func FillAlgoNames() []string {
	return []string{"auto", "pruned", "dc", "smawk", "online"}
}

// resolve maps FillAuto onto a concrete algorithm for an input of size n.
func (a FillAlgo) resolve(n int) FillAlgo {
	if a != FillAuto {
		return a
	}
	if n >= fillAutoThreshold {
		return FillDC
	}
	return FillPruned
}

// The monotone row fills below compute, for every cell i of row k ≥ 2,
//
//	E[k][i] = min_j E[k−1][j] + w(j+1, i),   J[k][i] = the LARGEST argmin,
//
// where w is the merge cost (Inf across gaps). Inside a certified monotone
// segment [a, b] (CostKernel.MonotoneSegments), w satisfies the concave
// quadrangle inequality — for split candidates j < j′ and cells i < i′
// whose merges stay inside the segment,
//
//	w(j+1, i) + w(j′+1, i′) ≤ w(j+1, i′) + w(j′+1, i)
//
// (the weighted sorted 1-D k-means Monge property) — so the candidate
// matrix M[i][j] = E[k−1][j] + w(j+1, i) restricted to the segment's cells
// i ∈ [a, b] and its in-segment candidates j ∈ [a−1, i−1] is totally
// monotone (the E[k−1][j] term is column-constant, so it cannot break the
// inequality; an Inf from an infeasible prefix is column-constant too): if
// a right candidate is at least as good as a left one at some cell, it
// stays at least as good at every later cell. The rightmost in-segment
// argmin is therefore non-decreasing in i, which is exactly the tie-break
// the pruned scan applies (it scans right to left and keeps the first
// strict improvement), so the monotone fills reproduce the scan's
// in-segment minima bit for bit.
//
// Each cell's remaining candidates — split points left of the segment,
// j ∈ [max(k−1, rightmostGapBefore(i)), a−2] — are completed afterwards by
// the envelope-pruned scan (completeSegment → envComplete): candidates are
// visited right to left a block at a time, and a block is discarded whole
// in O(1) when the monotone lower envelope — the static bound
// min(prevE[block]) + w(rightEdge+1, i) or the tighter progressive bound
// refreshed as earlier cells evaluated the block (see ensureEnvelope) —
// already reaches the incumbent (the merge cost w(j+1, i) grows as j moves
// left: SSE over a superset of rows, the same monotonicity behind the
// Jagadish early exit, so the right edge bounds the block). Completion
// replaces a cell only on strict improvement, every out-of-segment
// candidate lies left of every in-segment one, blocks are scanned in the
// reference order, and skipped blocks cannot strictly improve the
// incumbent, so the rightmost-argmin convention survives the merge; all
// candidate values are ≥ +0 and computed by the shared kernel arithmetic,
// so the combined minimum is bitwise-identical to the full scan's.
//
// Gaps integrate into the same framework: segments never span a gap, a
// merge cost across a gap is Inf, and those Inf cells persist downward (the
// rightmost gap before i is non-decreasing in i). Both fills therefore
// restrict each cell's candidate window to
// [max(k−1, rightmostGapBefore(i)), i−1] — the Section 5.3 jmin bound — and
// cap the cell range at the k-th gap — the imax bound — unconditionally:
// outside those bounds every candidate is infinite, so the produced rows
// are identical for every PruneMode (only the scan's work differs across
// ablation modes).

// ensureRightGap materializes rightmostGapBefore(i) for every position so
// the monotone fills resolve candidate windows in O(1) under random access.
func (st *dpState) ensureRightGap() {
	if st.rightGap != nil {
		return
	}
	st.rightGap = make([]int32, st.n+1)
	rg, gi := int32(0), 0
	gaps := st.kn.gaps
	for i := 0; i <= st.n; i++ {
		for gi < len(gaps) && gaps[gi] < i {
			rg = int32(gaps[gi])
			gi++
		}
		st.rightGap[i] = rg
	}
}

// effectiveIMax caps a row's cell range at the k-th gap: beyond it every
// cell of row k is infinite regardless of the pruning mode, so the monotone
// fills never visit those cells (the initialization already left them Inf
// with split point 0, matching the scan's output).
func (st *dpState) effectiveIMax(k, imax int) int {
	if k <= len(st.kn.gaps) && st.kn.gaps[k-1] < imax {
		return st.kn.gaps[k-1]
	}
	return imax
}

// pollFill polls cancellation every cancelCheckCells candidate evaluations,
// amortizing the context check off the monotone fills' hot path.
func (st *dpState) pollFill(evals int) error {
	st.fillSteps += int64(evals)
	if st.fillSteps < cancelCheckCells {
		return nil
	}
	st.fillSteps = 0
	return st.opts.canceled()
}

// --- per-segment dispatch ---

// fillRowSegmented walks the kernel's piecewise-monotone segmentation over
// the row's cells [k, imax]: segments of at least fillSegmentMin rows run
// the selected monotone fill (FillDC, FillSMAWK or FillOnline) over their
// in-segment candidates and then complete every cell with the
// envelope-pruned out-of-segment scan; shorter segments run the
// envelope-pruned scan over their whole candidate windows. On fully
// monotone data (one segment per run) the completion windows are empty and
// this reduces to a whole-row monotone fill.
func (st *dpState) fillRowSegmented(k, imax int, jrow []int32, algo FillAlgo) error {
	imax = st.effectiveIMax(k, imax)
	if k > imax {
		return nil
	}
	st.ensureRightGap()
	st.envValid = false // prevE changed since the last row's envelope state
	st.envHint = -1     // last row's winning splits don't seed this row
	segs := st.segs
	for t, start := range segs {
		a := int(start)
		b := st.n
		if t+1 < len(segs) {
			b = int(segs[t+1]) - 1
		}
		if b < k {
			continue
		}
		if a > imax {
			break
		}
		ilo, ihi := max(k, a), min(imax, b)
		if b-a+1 < fillSegmentMin {
			// Eligibility goes by the full segment length, not the visited
			// slice, so a row's dispatch never depends on its k/imax bounds.
			if err := st.fillScanRange(k, ilo, ihi, jrow); err != nil {
				return err
			}
			continue
		}
		var err error
		switch algo {
		case FillSMAWK:
			err = st.segSMAWK(k, a, ilo, ihi, jrow)
		case FillOnline:
			err = st.segOnline(k, a, ilo, ihi, jrow)
		default:
			err = st.dcSolve(k, ilo, ihi, max(k-1, a-1), ihi-1, jrow)
		}
		if err != nil {
			return err
		}
		if err := st.completeSegment(k, a, ilo, ihi, jrow); err != nil {
			return err
		}
	}
	return nil
}

// fillScanRange fills cells ilo..ihi of row k with the envelope-pruned
// candidate scan under the monotone fills' conventions: the jmin/imax gap
// bounds apply unconditionally (outside them every candidate is infinite,
// so the produced cells are identical for every PruneMode) and rightGap is
// resolved from the materialized table. It serves the segments too short
// for a monotone fill to repay its setup; the envelope bound (see
// envComplete) keeps those cells from scanning their whole windows.
func (st *dpState) fillScanRange(k, ilo, ihi int, jrow []int32) error {
	for i := ilo; i <= ihi; i++ {
		st.stats.Cells++
		jmin := max(k-1, int(st.rightGap[i]))
		best, bestJ, evals := st.envComplete(i, jmin, i-1, Inf, 0)
		st.stats.InnerIters += int64(evals)
		st.curE[i] = best
		if jrow != nil {
			jrow[i] = bestJ
		}
		if err := st.pollFill(evals); err != nil {
			return err
		}
	}
	return nil
}

// completeSegment finishes cells ilo..ihi of the segment starting at a: the
// monotone fill compared only in-segment candidates j ≥ a−1, so the
// remaining window [max(k−1, rightmostGapBefore(i)), a−2] is searched with
// the envelope-pruned scan (envComplete), replacing a cell only on strict
// improvement (every out-of-segment candidate lies left of the in-segment
// argmin, so the rightmost-argmin convention is preserved). When the
// segment starts its run the window is empty and the loop falls through.
// The cells were already counted by the monotone fill; only the extra
// candidate evaluations land in InnerIters.
func (st *dpState) completeSegment(k, a, ilo, ihi int, jrow []int32) error {
	evals := 0
	for i := ilo; i <= ihi; i++ {
		jmin := max(k-1, int(st.rightGap[i]))
		if a-2 < jmin {
			continue
		}
		best, bestJ, cellEvals := st.envComplete(i, jmin, a-2, st.curE[i], -1)
		evals += cellEvals
		if bestJ >= 0 {
			st.curE[i] = best
			if jrow != nil {
				jrow[i] = bestJ
			}
		}
	}
	st.stats.InnerIters += int64(evals)
	return st.pollFill(evals)
}

// --- envelope-pruned completion ---

// envBlockBits sets the envelope granularity: completion candidates are
// grouped by split point into blocks of 2^envBlockBits columns — the unit
// in which the scan skips, probes and refreshes. 32 columns amortize each
// O(1) bound probe to a small fraction of a candidate evaluation per
// skipped column while keeping a refresh (one pass over the block) cheap
// enough to repay itself within a couple of cells.
const (
	envBlockBits = 5
	envBlock     = 1 << envBlockBits
)

// envSafety is the relative slack the completion scan keeps between a
// lower bound and the incumbent before discarding candidates: a block is
// skipped only when bound ≥ best·(1+envSafety). The bounds below are exact
// in real arithmetic; the slack absorbs the floating-point error of the
// prefix-slab evaluations on both sides of the comparison, so a skipped
// candidate is never one the reference scan would have installed as a
// strict improvement. 10⁻⁶ is orders of magnitude above the slabs' relative
// rounding error and orders below any error gap the DP distinguishes on
// real data, so the slack costs no measurable pruning.
const envSafety = 1e-6

// ensureEnvelope (re)initializes the per-block envelope state for the
// current prevE row. The completion scan minimizes
//
//	f_i(j) = prevE[j] + rerr(j+1, i)
//
// over out-of-segment split points j, and the envelope maintains, per block
// of 2^envBlockBits consecutive columns, two progressive lower bounds it
// can test in O(1) per block:
//
//   - static: min(prevE[block]) + rerr(hi+1, i) ≤ f_i(j) for every j ≤ hi
//     in the block — prevE is non-negative and the merge cost only grows as
//     the split moves left (SSE over a superset of rows, the monotonicity
//     behind the Jagadish exit), so the block's right edge bounds it whole.
//
//   - progressive: when a block was last refreshed at cell I (envAt), every
//     leaf holds its exact value f_I(j) ≥ envMin, and the weighted
//     parallel-axis decomposition of the merge cost
//
//     rerr(j+1, i) = rerr(j+1, I) + rerr(I+1, i)
//
//   - (W₁·W₂/(W₁+W₂))·Σ_d w²_d·(μ_{j,d} − ν_d)²
//
//     (W₁, μ the length and per-dimension means of run (j, I]; W₂, ν those
//     of run (I, i]) gives f_i(j) ≥ envMin + rerr(I+1, i) + pooled term,
//     with the pooled term bounded below through the refresh-time interval
//     [envMuLo, envMuHi] enclosing every leaf's run mean and the smallest
//     in-block run length W₁ = l[I]−l[hi]. The pooled term is what prices
//     the growth of every candidate's merge cost since the refresh — it
//     recovers ≈ (vᵢ−μ)² per appended row, which is exactly the rate at
//     which the incumbent grows too, so a refreshed block keeps pruning
//     even as the incumbent decays.
//
// Blocks are refreshed whole (every leaf re-evaluated in one pass) so the
// refresh cell I is uniform across the block and the decomposition above
// pairs each leaf's stored value with its own growth. The state is rebuilt
// lazily per row — fully certified series, whose completion windows are all
// empty, never pay for it.
func (st *dpState) ensureEnvelope() {
	if st.envValid {
		return
	}
	nb := (st.n >> envBlockBits) + 1
	p := st.kn.p
	if st.envMin == nil {
		st.envMin = make([]float64, nb)
		st.envMinPrev = make([]float64, nb)
		st.envAt = make([]int32, nb)
		st.envLo = make([]int32, nb)
		st.envHi = make([]int32, nb)
		st.envMuLo = make([]float64, nb*p)
		st.envMuHi = make([]float64, nb*p)
	}
	prevE := st.prevE
	for b := 0; b < nb; b++ {
		lo := b << envBlockBits
		hi := min(lo+envBlock-1, st.n)
		m := prevE[lo]
		for j := lo + 1; j <= hi; j++ {
			m = min(m, prevE[j])
		}
		st.envMinPrev[b] = m
		st.envMin[b] = m
		st.envAt[b] = -1
	}
	st.envValid = true
}

// envComplete minimizes f_i(j) = prevE[j] + rerr(j+1, i) over the candidate
// range [j1, j2], seeded with the incumbent (best, bestJ) and returning the
// window minimum with the rightmost argmin — the value and argmin the
// reference right-to-left scan produces (its Jagadish exit only ever cuts
// candidates whose merge cost alone already exceeds the running minimum,
// which under the merge cost's superset monotonicity are strictly worse
// than the answer, so the reference's result IS the window minimum with the
// rightmost argmin; see the tie rules below).
//
// The scan exploits that the winning split point moves slowly from one
// cell to the next: it first refreshes the block containing the previous
// cell's completion argmin (envHint), which lands the incumbent near its
// final value immediately, then sweeps the remaining blocks right to left,
// discarding each in O(1) against that strong incumbent (tallied in
// stats.EnvelopeSkips):
//
//   - the Jagadish stop: once the merge cost at a block's right edge alone
//     exceeds the incumbent, every remaining leaf to the left is strictly
//     worse (superset monotonicity) and the sweep ends;
//   - the static and progressive envelope bounds (see ensureEnvelope): a
//     block whose bound reaches best·(1+envSafety) cannot strictly improve
//     the incumbent and is skipped whole. A bound that only ties the
//     incumbent (lb == best, possible at best = 0) skips just the blocks
//     left of the current argmin — a tie further right must still be
//     evaluated to keep the argmin rightmost.
//
// A surviving block is refreshed (envRefresh): every leaf is evaluated at
// the current cell with the reference's exact arithmetic, the incumbent is
// updated under the rightmost-tie rule, and the block's envelope state is
// rebuilt so later cells inherit the tightened bound. A Jagadish stop
// inside a refresh freezes the incumbent — the frozen leaf's merge cost
// exceeds the incumbent, so every leaf further left is strictly worse and
// the sweep ends once the block's state is complete.
//
// The returned count is the number of merge-cost evaluations spent; bound
// probes are O(1) per block and are not counted as inner iterations.
func (st *dpState) envComplete(i, j1, j2 int, best float64, bestJ int32) (float64, int32, int) {
	if j2 < j1 {
		return best, bestJ, 0
	}
	st.ensureEnvelope()
	kn := st.kn
	rerr := st.rerr
	l := kn.l
	p := kn.p
	stride := st.n + 1
	s, w2 := kn.s, kn.w2
	evals := 0

	// Seed: refresh the block that held the previous cell's winner, so the
	// sweep below compares against a near-final incumbent instead of paying
	// one evaluation per candidate on the long slide toward the optimum.
	hintB := -1
	floor := j1 // leaves left of floor are proven worse than the incumbent
	if h := st.envHint; h >= j1 && h <= j2 {
		hintB = h >> envBlockBits
		var stopJ, ev int
		best, bestJ, stopJ, ev = st.envRefresh(hintB, i, j1, j2, best, bestJ)
		evals += ev
		if stopJ >= 0 {
			floor = max(floor, stopJ)
		}
	}

	for b := j2 >> envBlockBits; b >= floor>>envBlockBits; b-- {
		if b == hintB {
			continue // evaluated this cell; its minimum is in the incumbent
		}
		lo := b << envBlockBits
		jlo := max(lo, floor)
		jhi := min(lo+envBlock-1, j2)
		if jhi < jlo {
			continue
		}
		rEdge := rerr(jhi+1, i)
		if rEdge > best {
			break // every remaining leaf costs at least rEdge on merges alone
		}
		thresh := best + best*envSafety
		lb := st.envMinPrev[b] + rEdge
		if lb < thresh {
			if I := int(st.envAt[b]); I >= 0 && I < i && int(st.envLo[b]) <= jlo && int(st.envHi[b]) >= jhi {
				credit := rerr(I+1, i)
				w1 := float64(l[I] - l[st.envHi[b]])
				wa := float64(l[i] - l[I])
				if w1 > 0 && wa > 0 {
					var pool float64
					for d := 0; d < p; d++ {
						mu2 := (s[d*stride+i] - s[d*stride+I]) / wa
						if muLo := st.envMuLo[b*p+d]; mu2 < muLo {
							dmu := muLo - mu2
							pool += w2[d] * dmu * dmu
						} else if muHi := st.envMuHi[b*p+d]; mu2 > muHi {
							dmu := mu2 - muHi
							pool += w2[d] * dmu * dmu
						}
					}
					credit += w1 * wa / (w1 + wa) * pool
				}
				if v := st.envMin[b] + credit; v > lb {
					lb = v
				}
			}
		}
		// Skip needs lb strictly above best (no leaf can tie) unless the
		// whole block lies left of the argmin, where ties lose anyway.
		if lb >= thresh && (lb > best || bestJ < 0 || jhi < int(bestJ)) {
			continue
		}
		var stopJ, ev int
		best, bestJ, stopJ, ev = st.envRefresh(b, i, floor, j2, best, bestJ)
		evals += ev
		if stopJ >= 0 {
			break // leaves left of the frozen leaf are strictly worse
		}
	}
	st.stats.EnvelopeSkips += int64(j2-j1+1) - int64(evals)
	if bestJ >= 0 {
		st.envHint = int(bestJ)
	}
	return best, bestJ, evals
}

// envRefresh evaluates every feasible leaf of block b at cell i — the
// reference scan's exact arithmetic, right to left — folding each value
// into the incumbent under the rightmost-tie rule (strict improvement, or
// an exact finite tie further right than the current completion argmin;
// bestJ < 0 marks an incumbent that lies right of the whole window, which
// ties must not displace). It rebuilds the block's envelope state: the
// minimum leaf value, the refresh cell, the covered leaf range and the
// per-dimension interval of run means, from which later cells derive the
// progressive bound. If a leaf's merge cost alone exceeds the incumbent,
// the incumbent freezes (leaves further left are strictly worse under
// superset monotonicity) but the remaining leaves are still evaluated so
// the stored state describes the whole covered range; the frozen position
// is returned as stopJ (−1 when no freeze happened) and ends the sweep.
func (st *dpState) envRefresh(b, i, j1, j2 int, best float64, bestJ int32) (float64, int32, int, int) {
	kn := st.kn
	rerr := st.rerr
	prevE := st.prevE
	l := kn.l
	p := kn.p
	stride := st.n + 1
	s := kn.s
	lo := b << envBlockBits
	jlo := max(lo, j1)
	jhi := min(lo+envBlock-1, j2)
	muLo := st.envMuLo[b*p : b*p+p]
	muHi := st.envMuHi[b*p : b*p+p]
	bmin := Inf
	stopJ := -1
	evals := 0
	for j := jhi; j >= jlo; j-- {
		e2 := rerr(j+1, i)
		evals++
		v := prevE[j] + e2
		bmin = min(bmin, v)
		if stopJ < 0 {
			if v < best || (v == best && v < Inf && bestJ >= 0 && int32(j) > bestJ) {
				best, bestJ = v, int32(j)
			}
			if e2 > best {
				stopJ = j
			}
		}
		w := float64(l[i] - l[j])
		for d := 0; d < p; d++ {
			mu := (s[d*stride+i] - s[d*stride+j]) / w
			if j == jhi {
				muLo[d], muHi[d] = mu, mu
			} else {
				muLo[d] = min(muLo[d], mu)
				muHi[d] = max(muHi[d], mu)
			}
		}
	}
	st.envMin[b] = bmin
	st.envAt[b] = int32(i)
	st.envLo[b], st.envHi[b] = int32(jlo), int32(jhi)
	return best, bestJ, stopJ, evals
}

// --- monotone divide and conquer ---

// dcSolve fills cells ilo..ihi with candidate split points clamped to
// [jlo, jhi] (further clamped per cell by its own jmin window).
func (st *dpState) dcSolve(k, ilo, ihi, jlo, jhi int, jrow []int32) error {
	if ilo > ihi {
		return nil
	}
	mid := ilo + (ihi-ilo)/2
	lo := max(jlo, max(k-1, int(st.rightGap[mid])))
	hi := min(jhi, mid-1)
	rerr := st.rerr
	prevE := st.prevE
	best := Inf
	bestJ := 0
	inner := 0
	for j := hi; j >= lo; j-- {
		inner++
		err2 := rerr(j+1, mid)
		if v := prevE[j] + err2; v < best {
			best = v
			bestJ = j
		}
		// err2 grows as j decreases; once it alone exceeds the best total,
		// no smaller j can win (the scan's early exit applies here too).
		if err2 > best {
			break
		}
	}
	st.stats.Cells++
	st.stats.InnerIters += int64(inner)
	st.curE[mid] = best
	if jrow != nil {
		jrow[mid] = int32(bestJ)
	}
	if err := st.pollFill(inner); err != nil {
		return err
	}
	// An Inf cell (every candidate saturated — possible under extreme
	// weights even on certified data) constrains neither neighbor: recurse
	// with the parent's bounds instead of narrowing through its sentinel.
	leftHi, rightLo := bestJ, bestJ
	if best == Inf {
		leftHi, rightLo = jhi, jlo
	}
	if err := st.dcSolve(k, ilo, mid-1, jlo, leftHi, jrow); err != nil {
		return err
	}
	return st.dcSolve(k, mid+1, ihi, rightLo, jhi, jrow)
}

// --- online concave frontier ---

// segOnline fills cells ilo..ihi of the segment starting at a with the
// incremental concave-frontier fill (FillOnline): cells are answered
// strictly left to right, and the only state carried between cells is the
// frontier — a stack of (candidate, firstCell) intervals partitioning the
// remaining cells by their future rightmost argmin among the candidates
// seen so far. When split point c = i−1 becomes available it pops every
// tail interval it ties-or-beats at the start of that interval's remaining
// domain (total monotonicity then makes it at least as good on the whole
// domain, and the tie goes to c, the rightmost candidate); if it loses
// against the surviving tail it takes over from the crossover cell located
// by binary search (the comparison predicate is monotone in the cell for
// the same reason). Each cell then answers from the front interval in one
// candidate evaluation. The per-cell work is O(1) amortized plus one
// O(log m) search per candidate, and never depends on candidates that have
// not arrived yet — which is what lets the incremental Solver and the
// streaming exact-DP path use it row by row. An all-Inf cell (extreme
// weights saturating every candidate) writes the scan's Inf/0 sentinel;
// Inf candidates are popped by ties like any other, and an Inf comparison
// stays monotone because saturated merge costs only grow with the cell.
func (st *dpState) segOnline(k, a, ilo, ihi int, jrow []int32) error {
	if ilo > ihi {
		return nil
	}
	rerr := st.rerr
	prevE := st.prevE
	val := func(t, j int) float64 { return prevE[j] + rerr(j+1, t) }
	// onJ[q] answers cells [onS[q], onS[q+1]) — the last entry runs to ihi;
	// entries before the front index f are consumed.
	if cap(st.onJ) < ihi-ilo+1 {
		st.onJ = make([]int32, 0, ihi-ilo+1)
		st.onS = make([]int32, 0, ihi-ilo+1)
	}
	onJ, onS := st.onJ[:0], st.onS[:0]
	onJ = append(onJ, int32(ilo-1)) // the one candidate available at cell ilo
	onS = append(onS, int32(ilo))
	f := 0
	evals := 0
	for i := ilo; i <= ihi; i++ {
		st.stats.Cells++
		cellStart := evals
		if i > ilo {
			c := i - 1 // the split point that became available this cell
			for len(onJ) > f {
				last := len(onJ) - 1
				h := max(int(onS[last]), i)
				evals += 2
				if val(h, c) <= val(h, int(onJ[last])) {
					onJ, onS = onJ[:last], onS[:last]
					continue
				}
				break
			}
			if len(onJ) == f {
				onJ = append(onJ, int32(c))
				onS = append(onS, int32(i))
			} else {
				// c loses at the tail's domain start; binary-search the first
				// cell where it ties or wins, if any.
				last := len(onJ) - 1
				d := int(onJ[last])
				lo, hi := max(int(onS[last]), i)+1, ihi
				for lo <= hi {
					t := lo + (hi-lo)/2
					evals += 2
					if val(t, c) <= val(t, d) {
						hi = t - 1
					} else {
						lo = t + 1
					}
				}
				if lo <= ihi {
					onJ = append(onJ, int32(c))
					onS = append(onS, int32(lo))
				}
			}
		}
		for f+1 < len(onJ) && int(onS[f+1]) <= i {
			f++
		}
		evals++
		best := val(i, int(onJ[f]))
		st.curE[i] = best
		if jrow != nil {
			if best == Inf {
				jrow[i] = 0
			} else {
				jrow[i] = onJ[f]
			}
		}
		if err := st.pollFill(evals - cellStart); err != nil {
			st.onJ, st.onS = onJ[:0], onS[:0]
			st.stats.InnerIters += int64(evals)
			return err
		}
	}
	st.onJ, st.onS = onJ[:0], onS[:0]
	st.stats.InnerIters += int64(evals)
	return nil
}

// --- SMAWK ---

// smawkValue evaluates the candidate matrix entry M[i][j] for row k: Inf
// for columns on or right of the diagonal (j ≥ i is not a feasible split
// for cell i) and for split points whose merge would cross a gap,
// E[k−1][j] + w(j+1, i) otherwise. Diagonal pads are handled structurally
// — the reduce step never compares two pads and the interpolation scan
// skips them — so no finite sentinel exists for genuine (arbitrarily
// large) merge costs to undercut.
func (st *dpState) smawkValue(i, j int) float64 {
	if j >= i {
		return Inf
	}
	if int(st.rightGap[i]) > j {
		return Inf
	}
	return st.prevE[j] + st.rerr(j+1, i)
}

// smawkCarve hands out a zero-length int32 slice with the given capacity
// from the per-state arena. The SMAWK recursion is a chain whose level
// sizes halve, so one row fill carves at most 3·(rows+1) entries in total;
// segSMAWK sizes the arena accordingly and resets it per segment, which
// keeps the whole fill allocation-free after the first row.
func (st *dpState) smawkCarve(capacity int) []int32 {
	s := st.smawkBuf[st.smawkOff : st.smawkOff : st.smawkOff+capacity]
	st.smawkOff += capacity
	return s
}

// segSMAWK runs the SMAWK algorithm over one certified segment's totally
// monotone candidate matrix: cells ilo..ihi, in-segment candidate columns
// max(k−1, a−1)..ihi−1 (the two counts are always equal). O(m) candidate
// evaluations for a segment of m cells; the column arena is reset per
// segment, so a row fill stays allocation-free once the arena has grown to
// the largest segment.
func (st *dpState) segSMAWK(k, a, ilo, ihi int, jrow []int32) error {
	if st.smawkArg == nil {
		st.smawkArg = make([]int32, st.n+1)
	}
	m := ihi - ilo + 1
	if need := 3 * (m + 1); cap(st.smawkBuf) < need {
		st.smawkBuf = make([]int32, need)
	}
	st.smawkOff = 0
	cols := st.smawkCarve(m)
	jlo := max(k-1, a-1)
	for t := 0; t < m; t++ {
		cols = append(cols, int32(jlo+t))
	}
	if err := st.smawk(ilo, 1, m, cols); err != nil {
		return err
	}
	st.stats.Cells += int64(m)
	// smawk wrote minima and argmins directly; copy argmins out when the
	// caller keeps split rows (completeSegment may still override them).
	if jrow != nil {
		copy(jrow[ilo:ihi+1], st.smawkArg[ilo:ihi+1])
	}
	return nil
}

// smawk computes the row minima of the candidate matrix restricted to the
// cell arithmetic progression rStart, rStart+rStep, ... (rCount cells) and
// the candidate columns cols, writing E values into curE and argmins into
// smawkArg. cols must be ascending; rightmost argmins are selected.
func (st *dpState) smawk(rStart, rStep, rCount int, cols []int32) error {
	if rCount == 0 {
		return nil
	}
	// Reduce: retain at most rCount columns that can hold a row minimum.
	S := st.smawkCarve(min(rCount, len(cols)))
	cmps := 0
	for _, c := range cols {
		for len(S) > 0 {
			r := rStart + (len(S)-1)*rStep
			top := int(S[len(S)-1])
			if top >= r {
				// top sits on/right of the diagonal at this cell, and so
				// does c (it is further right): two pads are incomparable
				// here — both may only matter for deeper cells, so keep
				// the stack and push c below.
				break
			}
			cmps++
			// The rightmost-tie convention pops on ties: an equally good
			// column further right shadows the stack top from this cell
			// on. Inf-valued tops (gap-crossing or infeasible-prefix
			// columns) tie with anything ≤ Inf and stay Inf at every
			// deeper cell, so popping them is always sound.
			if st.smawkValue(r, top) >= st.smawkValue(r, int(c)) {
				S = S[:len(S)-1]
			} else {
				break
			}
		}
		if len(S) < rCount {
			S = append(S, c)
		}
	}
	st.stats.InnerIters += int64(cmps)
	if err := st.pollFill(2 * cmps); err != nil {
		return err
	}
	// Recurse on the odd cells (1-based odd indices of the progression).
	if err := st.smawk(rStart+rStep, 2*rStep, rCount/2, S); err != nil {
		return err
	}
	// Interpolate the even cells: cell t's rightmost argmin lies between
	// the argmins of its odd neighbors (argmins are monotone), scanned
	// right to left so the first strict improvement is the rightmost.
	loIdx := 0
	evals := 0
	for t := 0; t < rCount; t += 2 {
		i := rStart + t*rStep
		if t > 0 {
			// Argmin 0 is the Inf-cell sentinel (real argmins are ≥ k−1 ≥ 1)
			// and constrains nothing; loIdx then keeps the bound of the
			// last finite neighbor, which is still a valid lower bound.
			down := st.smawkArg[rStart+(t-1)*rStep]
			for loIdx < len(S)-1 && S[loIdx] < down {
				loIdx++
			}
		}
		hiIdx := len(S) - 1
		if t+1 < rCount {
			// The next odd cell's argmin bounds this cell's window from
			// above; walk up from loIdx (argmins are monotone, so the walk
			// is amortized by the scan below, never a rescan from the top).
			// A sentinel neighbor (all-Inf cell) leaves the window open.
			if up := st.smawkArg[rStart+(t+1)*rStep]; up != 0 {
				hiIdx = loIdx
				for hiIdx < len(S)-1 && S[hiIdx] < up {
					hiIdx++
				}
			}
		}
		best := Inf
		bestJ := int32(0)
		cellEvals := 0
		for q := hiIdx; q >= loIdx; q-- {
			j := int(S[q])
			if j >= i {
				continue // diagonal pad: not a feasible split for this cell
			}
			cellEvals++
			if v := st.smawkValue(i, j); v < best {
				best = v
				bestJ = S[q]
			}
		}
		evals += cellEvals
		st.stats.InnerIters += int64(cellEvals)
		st.curE[i] = best
		st.smawkArg[i] = bestJ
	}
	return st.pollFill(evals)
}
