// Package core implements parsimonious temporal aggregation (PTA), the
// contribution of the paper: reducing an instant-temporal-aggregation (ITA)
// result by repeatedly merging adjacent tuples until a user-given size bound
// c or error bound ε is met.
//
// The package provides
//
//   - the merge operator ⊕ and the sum-squared error measure (Defs. 3 and 5),
//   - prefix matrices for O(p) error evaluation of any adjacent run (Prop. 1),
//   - the exact dynamic-programming evaluators PTAc and PTAe (Sec. 5),
//     including the unpruned DPBasic baseline of the experiments,
//   - the greedy merging strategy GMS and the streaming greedy evaluators
//     GPTAc and GPTAe with δ read-ahead (Sec. 6).
//
// Row indices handed to Prefix and the DP matrices are 1-based, matching the
// paper's notation (s1 ... sn); slices of rows use ordinary 0-based Go
// indexing.
package core

import (
	"context"
	"fmt"
	"math"
)

// Inf is the infinite error assigned to merges that would cross a temporal
// gap or an aggregation-group boundary.
var Inf = math.Inf(1)

// DeltaInf disables the δ read-ahead heuristic of the greedy algorithms:
// with δ = DeltaInf early merges happen only when Proposition 3/4 proves
// them safe, and the result provably equals GMS (Theorems 2 and 3).
const DeltaInf = math.MaxInt32

// Options carries evaluation parameters shared by all PTA algorithms. It is
// a per-call argument bundle: Ctx and Scratch belong to one evaluation and
// must not be shared across concurrent calls.
type Options struct {
	// Weights holds one positive weight per aggregate attribute (w_d of
	// Definition 5). nil means all weights are 1.
	Weights []float64
	// Fill selects the DP row-fill algorithm (see FillAlgo). The zero
	// value FillAuto picks by input size. Every algorithm produces
	// bitwise-identical E/J matrices; they differ only in speed.
	Fill FillAlgo
	// Ctx, when non-nil, is polled inside the evaluation loops so that
	// long-running reductions abort promptly when the caller cancels.
	// Evaluators return the context error (wrapped) on cancellation.
	Ctx context.Context
	// Scratch, when non-nil, provides reusable DP buffers, amortizing the
	// per-call allocations of the error and split-point matrix rows and of
	// the cost-kernel prefix slabs. A Scratch serves one evaluation at a
	// time.
	Scratch *Scratch
}

// canceled reports the context error, if any, wrapped for the evaluators.
func (o Options) canceled() error {
	if o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return fmt.Errorf("core: evaluation canceled: %w", err)
	}
	return nil
}

// acceptErrorBound returns the threshold for testing a row error against an
// error bound eps·SSEmax. Prefix sums accumulated in different orders leave
// O(ulp)-scale residue on exact ties — eps = 0 over duplicate values, eps = 1
// at cmin — which must not move the minimal feasible size, so every
// error-bounded search (serial, parallel, multi-budget, solver) accepts
// through this one function.
func acceptErrorBound(bound, maxErr float64) float64 {
	return bound*(1+1e-9) + 1e-12*maxErr
}

// InfeasibleSizeError reports a size budget below the smallest reachable
// reduction size cmin (the number of maximal adjacent runs): no sequence of
// adjacent merges can shrink the input that far.
type InfeasibleSizeError struct {
	// C is the requested size bound.
	C int
	// CMin is the smallest reachable reduction size.
	CMin int
}

func (e *InfeasibleSizeError) Error() string {
	return fmt.Sprintf("core: size bound %d below cmin %d", e.C, e.CMin)
}

// weightsSquared resolves the per-dimension squared weights for p aggregate
// attributes.
func (o Options) weightsSquared(p int) ([]float64, error) {
	w2 := make([]float64, p)
	if o.Weights == nil {
		for d := range w2 {
			w2[d] = 1
		}
		return w2, nil
	}
	if len(o.Weights) != p {
		return nil, fmt.Errorf("core: %d weights for %d aggregate attributes", len(o.Weights), p)
	}
	for d, w := range o.Weights {
		if !(w > 0) {
			return nil, fmt.Errorf("core: weight %d is %v, want > 0", d, w)
		}
		w2[d] = w * w
	}
	return w2, nil
}
