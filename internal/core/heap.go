package core

import "repro/internal/temporal"

// node is the heap entry of Section 6.2.2: one tuple of the intermediate
// relation, doubly linked to its chronological neighbours within the stream
// order, keyed by the error its merge with the predecessor would introduce.
type node struct {
	// id is the 1-based arrival number of the ITA tuple this node started
	// as. A merge folds the top node into its predecessor and keeps the
	// predecessor's id (the paper's "P.id remains unchanged").
	id int
	// row is the (possibly already merged) tuple the node represents.
	row temporal.SeqRow
	// prev and next are the chronological neighbours in the intermediate
	// relation; nil at the ends.
	prev, next *node
	// key is dsim(prev.row, row): the error of merging this node into its
	// predecessor, Inf when there is no predecessor or the pair is
	// non-adjacent.
	key float64
	// hpos is the node's index in the heap array, maintained by the heap.
	hpos int
}

// mergeHeap is a binary min-heap of nodes ordered by (key, start timestamp,
// id). The secondary keys implement the paper's tie-break ("merge the pair
// with the smallest timestamp value") and make runs deterministic.
type mergeHeap struct {
	ns []*node
}

func (h *mergeHeap) len() int { return len(h.ns) }

// peek returns the most similar pair's node without removing it, or nil.
func (h *mergeHeap) peek() *node {
	if len(h.ns) == 0 {
		return nil
	}
	return h.ns[0]
}

func nodeLess(a, b *node) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.row.T.Start != b.row.T.Start {
		return a.row.T.Start < b.row.T.Start
	}
	return a.id < b.id
}

// push inserts a node.
func (h *mergeHeap) push(n *node) {
	n.hpos = len(h.ns)
	h.ns = append(h.ns, n)
	h.siftUp(n.hpos)
}

// fix restores the heap order after n.key changed in place.
func (h *mergeHeap) fix(n *node) {
	i := n.hpos
	if !h.siftUp(i) {
		h.siftDown(i)
	}
}

// remove deletes an arbitrary node from the heap.
func (h *mergeHeap) remove(n *node) {
	i := n.hpos
	last := len(h.ns) - 1
	h.swap(i, last)
	h.ns = h.ns[:last]
	if i < last {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
	}
	n.hpos = -1
}

func (h *mergeHeap) swap(i, j int) {
	h.ns[i], h.ns[j] = h.ns[j], h.ns[i]
	h.ns[i].hpos = i
	h.ns[j].hpos = j
}

func (h *mergeHeap) siftUp(i int) (moved bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(h.ns[i], h.ns[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *mergeHeap) siftDown(i int) {
	n := len(h.ns)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && nodeLess(h.ns[l], h.ns[best]) {
			best = l
		}
		if r < n && nodeLess(h.ns[r], h.ns[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
