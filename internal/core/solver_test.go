package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/temporal"
)

func solverInput(t *testing.T) *temporal.Sequence {
	t.Helper()
	seq, err := ita.Eval(dataset.Proj(), ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestSolverMatchesPTAc pins the solver against the one-shot evaluators on
// every feasible size and a ladder of error bounds.
func TestSolverMatchesPTAc(t *testing.T) {
	for _, mk := range []func(*testing.T) *temporal.Sequence{
		solverInput,
		func(t *testing.T) *temporal.Sequence {
			seq, err := dataset.Uniform(5, 30, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			return seq
		},
	} {
		seq := mk(t)
		sv, err := NewSolver(seq, Options{}, true, true)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for c := seq.CMin(); c <= seq.Len(); c++ {
			want, err := PTAc(seq, c, Options{})
			if err != nil {
				t.Fatalf("PTAc(%d): %v", c, err)
			}
			got, err := sv.SolveSize(ctx, c)
			if err != nil {
				t.Fatalf("SolveSize(%d): %v", c, err)
			}
			if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
				t.Fatalf("SolveSize(%d) = (C=%d, E=%g), want (C=%d, E=%g)",
					c, got.C, got.Error, want.C, want.Error)
			}
			if !got.Sequence.Equal(want.Sequence, 1e-9) {
				t.Fatalf("SolveSize(%d) rows differ from PTAc", c)
			}
		}
		for _, eps := range []float64{0, 0.01, 0.05, 0.2, 0.5, 1} {
			want, err := PTAe(seq, eps, Options{})
			if err != nil {
				t.Fatalf("PTAe(%v): %v", eps, err)
			}
			got, err := sv.SolveError(ctx, eps)
			if err != nil {
				t.Fatalf("SolveError(%v): %v", eps, err)
			}
			if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
				t.Fatalf("SolveError(%v) = (C=%d, E=%g), want (C=%d, E=%g)",
					eps, got.C, got.Error, want.C, want.Error)
			}
		}
	}
}

// TestSolverReusesRows asserts the point of the solver: a repeated or
// shallower budget fills no new matrix cells.
func TestSolverReusesRows(t *testing.T) {
	seq := solverInput(t)
	sv, err := NewSolver(seq, Options{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sv.SolveSize(ctx, 5); err != nil {
		t.Fatal(err)
	}
	warm := sv.Stats().Cells
	if warm == 0 {
		t.Fatal("first solve filled no cells")
	}
	if sv.Rows() != 5 {
		t.Fatalf("Rows() = %d after c=5, want 5", sv.Rows())
	}
	for _, c := range []int{5, 4, 3} {
		if _, err := sv.SolveSize(ctx, c); err != nil {
			t.Fatalf("SolveSize(%d): %v", c, err)
		}
	}
	if got := sv.Stats().Cells; got != warm {
		t.Fatalf("warm solves filled %d new cells, want 0", got-warm)
	}
	// A deeper budget extends, not refills.
	if _, err := sv.SolveSize(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if sv.Rows() != 6 {
		t.Fatalf("Rows() = %d after c=6, want 6", sv.Rows())
	}
	if sv.MemBytes() <= 0 {
		t.Fatal("MemBytes() not positive")
	}
}

// TestSolverInfeasibleAndCanceled covers the failure paths the serving layer
// maps to HTTP statuses.
func TestSolverInfeasibleAndCanceled(t *testing.T) {
	seq := solverInput(t)
	sv, err := NewSolver(seq, Options{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	var inf *InfeasibleSizeError
	if _, err := sv.SolveSize(context.Background(), seq.CMin()-1); !errors.As(err, &inf) {
		t.Fatalf("SolveSize below cmin: %v, want InfeasibleSizeError", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sv.SolveSize(ctx, seq.CMin()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SolveSize: %v, want context.Canceled", err)
	}
	// The solver survives a canceled call: the same budget succeeds later.
	if _, err := sv.SolveSize(context.Background(), seq.CMin()); err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	if _, err := NewSolver(seq.WithRows(nil), Options{}, true, true); err == nil {
		t.Fatal("NewSolver over empty relation succeeded")
	}
}

// TestSolverCertifiesOnce pins the certification fix: computeSegments runs
// exactly once per kernel no matter how many Deepen rounds, budget answers
// and coverage scrapes consult the segmentation. Before the fix every
// Deepen round re-certified the whole series, turning the incremental
// path's per-row cost from O(n) into O(n·p) rescans.
func TestSolverCertifiesOnce(t *testing.T) {
	seq, err := dataset.Mixed(1, 512, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSolver(seq, Options{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// NewSolver consults the coverage once to resolve FillAuto.
	if got := sv.kn.certifies.Load(); got != 1 {
		t.Fatalf("certifies after construction = %d, want 1", got)
	}
	ctx := context.Background()
	for _, k := range []int{1, 4, 16, 64} {
		if err := sv.Deepen(ctx, k); err != nil {
			t.Fatalf("Deepen(%d): %v", k, err)
		}
	}
	if _, err := sv.SolveSize(ctx, 80); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if cov := sv.MonotoneCoverage(); cov <= 0 || cov >= 1 {
			t.Fatalf("mixed coverage = %v, want strictly between 0 and 1", cov)
		}
	}
	if got := sv.kn.certifies.Load(); got != 1 {
		t.Fatalf("certifies after Deepen/Solve rounds = %d, want 1", got)
	}
}

// TestSolverDeepen covers the explicit pacing entry point: Deepen fills
// rows without answering a budget, shallower targets are no-ops, targets
// beyond n clamp, and a subsequent budget answer reuses every deepened row.
func TestSolverDeepen(t *testing.T) {
	seq := solverInput(t)
	sv, err := NewSolver(seq, Options{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sv.Deepen(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if sv.Rows() != 4 {
		t.Fatalf("Rows() = %d after Deepen(4), want 4", sv.Rows())
	}
	warm := sv.Stats().Cells
	if err := sv.Deepen(ctx, 2); err != nil { // shallower: no-op
		t.Fatal(err)
	}
	if got := sv.Stats().Cells; got != warm || sv.Rows() != 4 {
		t.Fatalf("Deepen(2) refilled: rows=%d cells=%d, want 4/%d", sv.Rows(), got, warm)
	}
	if err := sv.Deepen(ctx, seq.Len()+100); err != nil { // clamps to n
		t.Fatal(err)
	}
	if sv.Rows() != seq.Len() {
		t.Fatalf("Rows() = %d after over-deep Deepen, want %d", sv.Rows(), seq.Len())
	}
	warm = sv.Stats().Cells
	got, err := sv.SolveSize(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cells := sv.Stats().Cells; cells != warm {
		t.Fatalf("budget after full Deepen filled %d new cells, want 0", cells-warm)
	}
	want, err := PTAc(seq, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
		t.Fatalf("deepened SolveSize(4) = (C=%d, E=%g), want (C=%d, E=%g)",
			got.C, got.Error, want.C, want.Error)
	}
}

// countdownCtx reports cancellation after a fixed number of Err polls — it
// forces an abort in the middle of a matrix row, past the top-of-row check.
type countdownCtx struct {
	context.Context
	polls *int
	limit int
}

func (c countdownCtx) Err() error {
	*c.polls++
	if *c.polls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestSolverRetryAfterMidRowCancel cancels a fill mid-row and verifies the
// retained state still produces the exact result on retry (the E-row buffer
// swap must be undone on abort).
func TestSolverRetryAfterMidRowCancel(t *testing.T) {
	seq, err := dataset.Uniform(1, 1500, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSolver(seq, Options{}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	c := seq.Len() / 100
	polls := 0
	ctx := countdownCtx{Context: context.Background(), polls: &polls, limit: 2}
	if _, err := sv.SolveSize(ctx, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-row canceled SolveSize: %v, want context.Canceled", err)
	}
	if sv.Rows() >= c {
		t.Fatalf("canceled fill completed %d rows, want < %d", sv.Rows(), c)
	}
	got, err := sv.SolveSize(context.Background(), c)
	if err != nil {
		t.Fatalf("retry after mid-row cancel: %v", err)
	}
	want, err := PTAc(seq, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-6*(1+want.Error) {
		t.Fatalf("retry result (C=%d, E=%g) differs from PTAc (C=%d, E=%g)",
			got.C, got.Error, want.C, want.Error)
	}
}
