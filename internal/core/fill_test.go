package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// monotoneFills are the row-fill algorithms that must reproduce the pruned
// scan's matrices bit for bit.
var monotoneFills = []FillAlgo{FillDC, FillSMAWK, FillOnline}

// monotoneSequence builds a random gap-ful sequence and then sorts each
// aggregate dimension within every maximal run (ascending or descending per
// run and dimension) — the counter-like shape the kernel certifies, so the
// monotone fills genuinely run instead of falling back to the scan.
func monotoneSequence(rng *rand.Rand, n, p int, gapProb float64) *temporal.Sequence {
	seq := randomSequence(rng, n, p, gapProb)
	kn, err := NewKernel(seq, Options{})
	if err != nil {
		panic(err)
	}
	runEnds := append(append([]int(nil), kn.Gaps()...), n)
	start := 0
	for _, end := range runEnds {
		for d := 0; d < p; d++ {
			vals := make([]float64, 0, end-start)
			for r := start; r < end; r++ {
				vals = append(vals, seq.Rows[r].Aggs[d])
			}
			sort.Float64s(vals)
			if rng.Intn(2) == 0 {
				for a, b := 0, len(vals)-1; a < b; a, b = a+1, b-1 {
					vals[a], vals[b] = vals[b], vals[a]
				}
			}
			for r := start; r < end; r++ {
				seq.Rows[r].Aggs[d] = vals[r-start]
			}
		}
		start = end
	}
	return seq
}

// tieSequence builds a kernel over a sequence engineered for exact
// floating-point ties: unit-length intervals and non-decreasing plateau
// values (long stretches of exactly equal costs), so many candidate splits
// produce identical totals and the rightmost-argmin tie handling is
// exercised on every row while the kernel still certifies monotone runs.
func tieSequence(rng *rand.Rand, n, p int, gapProb float64) *CostKernel {
	attrs := []temporal.Attribute{{Name: "g", Kind: temporal.KindInt}}
	names := make([]string, p)
	for d := range names {
		names[d] = "v" + string(rune('0'+d))
	}
	seq := temporal.NewSequence(attrs, names)
	gid := seq.Groups.Intern([]temporal.Datum{temporal.Int(0)})
	tcur := temporal.Chronon(0)
	levels := make([]float64, p)
	for d := range levels {
		levels[d] = 10
	}
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < gapProb {
			tcur += 2 // temporal gap; levels may reset direction next run
			for d := range levels {
				levels[d] = float64(10 * (1 + rng.Intn(2)))
			}
		}
		aggs := make([]float64, p)
		for d := range aggs {
			if rng.Float64() < 0.3 {
				levels[d] += 10 // step up, keeping the run non-decreasing
			}
			aggs[d] = levels[d]
		}
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid, Aggs: aggs,
			T: temporal.Interval{Start: tcur, End: tcur}})
		tcur++
	}
	kn, err := NewKernel(seq, Options{})
	if err != nil {
		panic(err)
	}
	return kn
}

// fillMatrices fills c rows of E and J with the given prune flags and fill
// algorithm and returns copies of every row.
func fillMatrices(t *testing.T, kn *CostKernel, opts Options, pruneI, pruneJ bool, c int) ([][]float64, [][]int32) {
	t.Helper()
	st := newDPState(kn, opts, pruneI, pruneJ, true)
	st.ownSplits = true
	em := make([][]float64, c)
	for k := 1; k <= c; k++ {
		if _, err := st.fillRow(k); err != nil {
			t.Fatalf("fillRow(%d): %v", k, err)
		}
		em[k-1] = append([]float64(nil), st.curE...)
	}
	return em, st.splits
}

// matricesBitwiseEqual reports the first differing cell of two E/J matrix
// pairs, comparing E cells bit for bit (NaN-free by construction).
func matricesBitwiseEqual(t *testing.T, label string, e1, e2 [][]float64, j1, j2 [][]int32) bool {
	t.Helper()
	for k := range e1 {
		for i := range e1[k] {
			a, b := e1[k][i], e2[k][i]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("%s: E[%d][%d] = %v (bits %x), want %v (bits %x)",
					label, k+1, i, b, math.Float64bits(b), a, math.Float64bits(a))
				return false
			}
			if j1[k][i] != j2[k][i] {
				t.Errorf("%s: J[%d][%d] = %d, want %d", label, k+1, i, j2[k][i], j1[k][i])
				return false
			}
		}
	}
	return true
}

// TestFillPropBitwiseIdentical: FillDC and FillSMAWK reproduce the pruned
// scan's E and J matrices bit for bit on random gap-ful, weighted,
// multi-attribute monotone-run sequences (the shape the kernel certifies,
// so the monotone code paths genuinely execute), under every pruning-flag
// combination.
func TestFillPropBitwiseIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		p := 1 + rng.Intn(3)
		seq := monotoneSequence(rng, n, p, []float64{0, 0.1, 0.35}[rng.Intn(3)])
		opts := Options{}
		if rng.Intn(2) == 0 {
			w := make([]float64, p)
			for d := range w {
				w[d] = 0.25 + rng.Float64()*3
			}
			opts.Weights = w
		}
		kn, err := NewKernel(seq, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !kn.MonotoneRuns() {
			t.Fatalf("seed %d: monotoneSequence not certified", seed)
		}
		c := 1 + rng.Intn(n)
		ok := true
		for _, flags := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			baseOpts := opts
			baseOpts.Fill = FillPruned
			wantE, wantJ := fillMatrices(t, kn, baseOpts, flags[0], flags[1], c)
			for _, algo := range monotoneFills {
				algoOpts := opts
				algoOpts.Fill = algo
				gotE, gotJ := fillMatrices(t, kn, algoOpts, flags[0], flags[1], c)
				if !matricesBitwiseEqual(t, algo.String(), wantE, gotE, wantJ, gotJ) {
					t.Logf("seed=%d n=%d p=%d c=%d pruneI=%v pruneJ=%v", seed, n, p, c, flags[0], flags[1])
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFillPropBitwiseIdenticalOnTies repeats the bitwise check on inputs
// engineered for exact cost ties (unit lengths, two-valued aggregates): the
// rightmost-argmin convention of every algorithm must agree on every tie.
func TestFillPropBitwiseIdenticalOnTies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		p := 1 + rng.Intn(2)
		kn := tieSequence(rng, n, p, []float64{0, 0.25}[rng.Intn(2)])
		if !kn.MonotoneRuns() {
			t.Fatalf("seed %d: tieSequence not certified", seed)
		}
		c := 1 + rng.Intn(n)
		base := Options{Fill: FillPruned}
		wantE, wantJ := fillMatrices(t, kn, base, true, true, c)
		ok := true
		for _, algo := range monotoneFills {
			gotE, gotJ := fillMatrices(t, kn, Options{Fill: algo}, true, true, c)
			if !matricesBitwiseEqual(t, algo.String(), wantE, gotE, wantJ, gotJ) {
				t.Logf("ties: seed=%d n=%d p=%d c=%d", seed, n, p, c)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestFillPropReconstructionsIdentical: the full evaluators produce
// identical Result rows and errors under every fill algorithm, including
// exact error-bound ties (eps = 0 and eps = 1 sit exactly on row errors).
func TestFillPropReconstructionsIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(32)
		p := 1 + rng.Intn(3)
		seq := monotoneSequence(rng, n, p, 0.3)
		kn, _ := NewKernel(seq, Options{})
		cmin := kn.CMin()
		c := cmin + rng.Intn(n-cmin+1)
		for _, eps := range []float64{0, rng.Float64(), 1} {
			want, err := PTAe(seq, eps, Options{Fill: FillPruned})
			if err != nil {
				t.Fatalf("PTAe: %v", err)
			}
			for _, algo := range monotoneFills {
				got, err := PTAe(seq, eps, Options{Fill: algo})
				if err != nil {
					t.Fatalf("PTAe(%v): %v", algo, err)
				}
				if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
					!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
					t.Errorf("PTAe eps=%v algo=%v: C=%d err=%v, want C=%d err=%v (seed %d)",
						eps, algo, got.C, got.Error, want.C, want.Error, seed)
					return false
				}
			}
		}
		want, err := PTAc(seq, c, Options{Fill: FillPruned})
		if err != nil {
			t.Fatalf("PTAc: %v", err)
		}
		for _, algo := range monotoneFills {
			got, err := PTAc(seq, c, Options{Fill: algo})
			if err != nil {
				t.Fatalf("PTAc(%v): %v", algo, err)
			}
			if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
				!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
				t.Errorf("PTAc c=%d algo=%v diverged (seed %d)", c, algo, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFillSolverAlgos: the incremental Solver answers size and error budgets
// identically under every fill algorithm (the matrix-cache bit-compat
// contract behind per-algo DP classes).
func TestFillSolverAlgos(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		seq := monotoneSequence(rng, 3+rng.Intn(40), 1+rng.Intn(2), 0.3)
		kn, _ := NewKernel(seq, Options{})
		cmin := kn.CMin()
		budgetsC := []int{cmin, min(cmin+2, seq.Len()), seq.Len()}
		budgetsEps := []float64{0, 0.05, 0.5, 1}
		var want []*DPResult
		for ai, algo := range []FillAlgo{FillPruned, FillDC, FillSMAWK} {
			sv, err := NewSolver(seq, Options{Fill: algo}, true, true)
			if err != nil {
				t.Fatal(err)
			}
			var got []*DPResult
			for _, c := range budgetsC {
				res, err := sv.SolveSize(nil, c)
				if err != nil {
					t.Fatalf("SolveSize(%d): %v", c, err)
				}
				got = append(got, res)
			}
			for _, eps := range budgetsEps {
				res, err := sv.SolveError(nil, eps)
				if err != nil {
					t.Fatalf("SolveError(%v): %v", eps, err)
				}
				got = append(got, res)
			}
			if ai == 0 {
				want = got
				continue
			}
			for bi := range want {
				if got[bi].C != want[bi].C ||
					math.Float64bits(got[bi].Error) != math.Float64bits(want[bi].Error) ||
					!reflect.DeepEqual(got[bi].Sequence.Rows, want[bi].Sequence.Rows) {
					t.Fatalf("trial %d algo %v budget %d: C=%d err=%v, want C=%d err=%v",
						trial, algo, bi, got[bi].C, got[bi].Error, want[bi].C, want[bi].Error)
				}
			}
		}
	}
}

// TestFillFallbackOnOscillating: on data where no monotone segment is long
// enough for the per-segment dispatch to engage (MonotoneCoverage = 0 —
// short random oscillating sequences decompose into two-to-three-row
// segments), a pinned monotone fill falls back to the scan outright and the
// full evaluators stay exact.
func TestFillFallbackOnOscillating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fallbacks := 0
	for trial := 0; trial < 25; trial++ {
		seq := randomSequence(rng, 3+rng.Intn(30), 1+rng.Intn(3), 0.25)
		kn, err := NewKernel(seq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if kn.MonotoneCoverage() == 0 {
			fallbacks++
			for _, algo := range monotoneFills {
				st := newDPState(kn, Options{Fill: algo}, true, true, true)
				if st.algo != FillPruned {
					t.Fatalf("trial %d: algo %v did not fall back with zero segment coverage", trial, algo)
				}
			}
		}
		c := kn.CMin() + rng.Intn(seq.Len()-kn.CMin()+1)
		want, err := PTAc(seq, c, Options{Fill: FillPruned})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range monotoneFills {
			got, err := PTAc(seq, c, Options{Fill: algo})
			if err != nil {
				t.Fatal(err)
			}
			if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
				!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
				t.Fatalf("trial %d algo %v: fallback result diverged", trial, algo)
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no oscillating input generated; the fallback path was never exercised")
	}
}

// TestFillAutoResolution pins the auto heuristic: scan below the threshold,
// divide and conquer at or above it, and explicit choices pass through.
func TestFillAutoResolution(t *testing.T) {
	if got := FillAuto.resolve(fillAutoThreshold - 1); got != FillPruned {
		t.Errorf("auto below threshold = %v, want pruned", got)
	}
	if got := FillAuto.resolve(fillAutoThreshold); got != FillDC {
		t.Errorf("auto at threshold = %v, want dc", got)
	}
	for _, a := range []FillAlgo{FillPruned, FillDC, FillSMAWK} {
		if got := a.resolve(1); got != a {
			t.Errorf("resolve(%v) = %v", a, got)
		}
	}
}

// TestParseFillAlgo covers the name round trip and the unknown-name error.
func TestParseFillAlgo(t *testing.T) {
	for _, name := range FillAlgoNames() {
		a, err := ParseFillAlgo(name)
		if err != nil {
			t.Fatalf("ParseFillAlgo(%q): %v", name, err)
		}
		if a.String() != name {
			t.Errorf("round trip %q → %v", name, a)
		}
	}
	if a, err := ParseFillAlgo(""); err != nil || a != FillAuto {
		t.Errorf("empty name: %v, %v", a, err)
	}
	if _, err := ParseFillAlgo("bogus"); err == nil {
		t.Error("unknown name must fail")
	}
}

// TestFillParallelAlgos: the run-decomposed parallel evaluators agree with
// the serial ones under every fill algorithm (exercised with -race in CI).
func TestFillParallelAlgos(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		seq := monotoneSequence(rng, 8+rng.Intn(60), 1+rng.Intn(2), 0.3)
		kn, _ := NewKernel(seq, Options{})
		c := kn.CMin() + rng.Intn(seq.Len()-kn.CMin()+1)
		eps := rng.Float64()
		for _, algo := range []FillAlgo{FillPruned, FillDC, FillSMAWK} {
			opts := Options{Fill: algo}
			want, err := PTAc(seq, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PTAcParallel(seq, c, opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got.C != want.C || math.Abs(got.Error-want.Error) > 1e-9*(1+want.Error) ||
				!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
				t.Fatalf("trial %d algo %v: parallel size diverged", trial, algo)
			}
			wantE, err := PTAe(seq, eps, opts)
			if err != nil {
				t.Fatal(err)
			}
			gotE, err := PTAeParallel(seq, eps, opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			if gotE.C != wantE.C {
				t.Fatalf("trial %d algo %v: parallel error-bounded C=%d, want %d",
					trial, algo, gotE.C, wantE.C)
			}
		}
	}
}

// TestFillSMAWKExtremeWeights is the regression test for the finite-pad
// defect: merge costs above any finite sentinel (huge but legitimate
// user-supplied weights, reachable through untrusted serve requests) must
// not let a diagonal pad win a row minimum. All fills must agree, not
// panic, and never emit out-of-range split points.
func TestFillSMAWKExtremeWeights(t *testing.T) {
	attrs := []temporal.Attribute(nil)
	seq := temporal.NewSequence(attrs, []string{"v"})
	gid := seq.Groups.Intern(nil)
	for i := 0; i < 10; i++ {
		seq.Rows = append(seq.Rows, temporal.SeqRow{Group: gid,
			Aggs: []float64{float64(i) * 1000},
			T:    temporal.Inst(temporal.Chronon(i))})
	}
	w := []float64{1.4e151} // pair-merge cost ≈ 9.8e307, finite; triples saturate to +Inf
	kn, err := NewKernel(seq, Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if !kn.MonotoneRuns() {
		t.Fatal("ramp not certified")
	}
	// The full matrices must stay bitwise identical even with saturated
	// (+Inf) cells interleaving finite ones mid-row.
	wantE, wantJ := fillMatrices(t, kn, Options{Weights: w, Fill: FillPruned}, true, true, 9)
	for _, algo := range monotoneFills {
		gotE, gotJ := fillMatrices(t, kn, Options{Weights: w, Fill: algo}, true, true, 9)
		matricesBitwiseEqual(t, algo.String(), wantE, gotE, wantJ, gotJ)
	}
	// Only c = 9 keeps the total error finite (two merged pairs already
	// overflow float64); smaller budgets are out of float range regardless
	// of the fill algorithm.
	want, err := PTAc(seq, 9, Options{Weights: w, Fill: FillPruned})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range monotoneFills {
		got, err := PTAc(seq, 9, Options{Weights: w, Fill: algo})
		if err != nil {
			t.Fatalf("c=9 algo=%v: %v", algo, err)
		}
		if got.C != want.C || math.Float64bits(got.Error) != math.Float64bits(want.Error) ||
			!reflect.DeepEqual(got.Sequence.Rows, want.Sequence.Rows) {
			t.Fatalf("c=9 algo=%v: diverged (err=%v, want %v)", algo, got.Error, want.Error)
		}
	}
}

// TestFillAutoKeepsAblationScan: FillAuto never swaps the ablation modes'
// fill (their Stats measure the scan's pruning bounds in isolation), while
// the fully pruned DP auto-upgrades and explicit pins are honored.
func TestFillAutoKeepsAblationScan(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	seq := monotoneSequence(rng, fillAutoThreshold, 1, 0)
	kn, err := NewKernel(seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !kn.MonotoneRuns() {
		t.Fatal("workload not certified")
	}
	for _, flags := range [][2]bool{{false, false}, {true, false}, {false, true}} {
		if st := newDPState(kn, Options{}, flags[0], flags[1], false); st.algo != FillPruned {
			t.Errorf("ablation pruneI=%v pruneJ=%v: auto resolved to %v, want pruned", flags[0], flags[1], st.algo)
		}
		if st := newDPState(kn, Options{Fill: FillSMAWK}, flags[0], flags[1], false); st.algo != FillSMAWK {
			t.Errorf("ablation pin: got %v, want smawk honored", st.algo)
		}
	}
	if st := newDPState(kn, Options{}, true, true, false); st.algo != FillDC {
		t.Errorf("pruned DP at threshold: auto resolved to %v, want dc", st.algo)
	}
}
