package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/temporal"
)

// CostKernel is the shared merge-cost kernel behind every exact PTA
// evaluation: the auxiliary prefix structures of Section 5.2 for a
// sequential relation s of size n with p aggregate attributes, stored as
// flat, contiguous slabs so the DP inner loops stream over cache lines
// instead of chasing per-dimension row pointers:
//
//	s[d·(n+1)+i]  = Σ_{j≤i} |s_j.T| · s_j.B_d        (length-weighted value sums)
//	ss[d·(n+1)+i] = Σ_{j≤i} |s_j.T| · s_j.B_d²       (length-weighted square sums)
//	l[i]          = Σ_{j≤i} |s_j.T|                   (timestamp lengths)
//	gaps          = positions of non-adjacent tuple pairs (the gap vector)
//
// With them the error of merging any gap-free run s_i..s_j into one tuple is
// computed in O(p) time (Proposition 1) by MergeErr. Building a kernel costs
// O(np) time and space (the slabs come from Options.Scratch when one is
// provided); in the paper this work is folded into the ITA scan.
//
// One kernel serves any number of row fills over the same sequence — the DP
// evaluators, DPMulti, the incremental Solver and the parallel run curves
// all draw their merge costs from here, so the cost arithmetic exists
// exactly once.
type CostKernel struct {
	seq  *temporal.Sequence
	n, p int
	w2   []float64
	s    []float64 // [p*(n+1)] flat, dimension-major; index 0 of each slab is the empty prefix
	ss   []float64 // [p*(n+1)] flat, dimension-major
	l    []int64   // [n+1]
	gaps []int     // 1-based positions l with s_l ⊀ s_{l+1}, ascending

	// Piecewise-monotone certification (MonotoneSegments), computed at most
	// once. The sync.Once makes lazy certification safe when one kernel is
	// shared across goroutines (DPMultiKernel serves every plan group of a
	// CompressMany from a single kernel; retained Solver kernels live in
	// caches): after the Once completes, monoSegs and monoCov are immutable.
	monoOnce sync.Once
	monoSegs []int32 // ascending 1-based segment start positions; nil until computed
	monoCov  float64 // fraction of rows in dispatch-eligible segments; set with monoSegs

	// certifies counts how many times computeSegments actually ran — at most
	// 1 per kernel by construction. Tests read it to pin the guarantee that
	// retained paths (Solver Deepen rounds, repeated coverage queries) never
	// re-certify; see TestSolverCertifiesOnce.
	certifies atomic.Int64
}

// NewKernel validates the sequence and the options and builds the cost
// kernel. When opts.Scratch is set, the prefix slabs are drawn from it and
// stay valid only for the current evaluation; retained states (Solver,
// MatrixSet) must build kernels without a Scratch.
func NewKernel(seq *temporal.Sequence, opts Options) (*CostKernel, error) {
	w2, err := opts.weightsSquared(seq.P())
	if err != nil {
		return nil, err
	}
	n, p := seq.Len(), seq.P()
	kn := &CostKernel{
		seq:  seq,
		n:    n,
		p:    p,
		w2:   w2,
		gaps: seq.GapPositions(),
	}
	if sc := opts.Scratch; sc != nil {
		kn.s, kn.ss, kn.l = sc.kernelSlabs(n, p)
	} else {
		kn.s = make([]float64, p*(n+1))
		kn.ss = make([]float64, p*(n+1))
		kn.l = make([]int64, n+1)
	}
	stride := n + 1
	kn.l[0] = 0
	for d := 0; d < p; d++ {
		kn.s[d*stride] = 0
		kn.ss[d*stride] = 0
	}
	for i := 1; i <= n; i++ {
		row := seq.Rows[i-1]
		length := float64(row.T.Len())
		kn.l[i] = kn.l[i-1] + row.T.Len()
		for d := 0; d < p; d++ {
			v := row.Aggs[d]
			kn.s[d*stride+i] = kn.s[d*stride+i-1] + length*v
			kn.ss[d*stride+i] = kn.ss[d*stride+i-1] + length*v*v
		}
	}
	return kn, nil
}

// N returns the sequence size n.
func (kn *CostKernel) N() int { return kn.n }

// P returns the number of aggregate attributes p.
func (kn *CostKernel) P() int { return kn.p }

// Sequence returns the underlying sequential relation.
func (kn *CostKernel) Sequence() *temporal.Sequence { return kn.seq }

// Gaps returns the gap vector G: the ascending 1-based positions l at which
// rows l and l+1 are non-adjacent.
func (kn *CostKernel) Gaps() []int { return kn.gaps }

// CMin returns the smallest reachable reduction size (number of maximal
// adjacent runs).
func (kn *CostKernel) CMin() int {
	if kn.n == 0 {
		return 0
	}
	return len(kn.gaps) + 1
}

// MergeErr returns the error of merging the (assumed gap-free) run s_i..s_j
// into one tuple, per Proposition 1. Indices are 1-based and inclusive,
// 1 ≤ i ≤ j ≤ n. The one-dimensional case — most of the paper's queries —
// is a handful of flat loads with no inner loop.
func (kn *CostKernel) MergeErr(i, j int) float64 {
	if i == j {
		return 0 // a single tuple merges into itself without error
	}
	if kn.p == 1 {
		length := float64(kn.l[j] - kn.l[i-1])
		sv := kn.s[j] - kn.s[i-1]
		e := kn.w2[0] * (kn.ss[j] - kn.ss[i-1] - sv*sv/length)
		if e < 0 {
			// Guard against tiny negative residues from cancellation.
			return 0
		}
		return e
	}
	return kn.mergeErrWide(i, j)
}

// mergeErrWide is the general multi-attribute merge cost, kept out of
// MergeErr so the p = 1 fast path stays small. Small widths take dedicated
// straight-line paths (most multi-attribute queries carry two to four
// aggregates); the general loop is unrolled four wide over the
// dimension-major slabs. The rangeErr closures below inline the same
// arithmetic in the same order, so every consumer computes identical bits.
func (kn *CostKernel) mergeErrWide(i, j int) float64 {
	switch kn.p {
	case 2:
		return kn.mergeErr2(i, j)
	case 3:
		return kn.mergeErr3(i, j)
	case 4:
		return kn.mergeErr4(i, j)
	}
	return kn.mergeErrN(i, j)
}

// mergeErr2 is the dedicated p = 2 merge cost: both slabs hoisted, no loop.
func (kn *CostKernel) mergeErr2(i, j int) float64 {
	stride := kn.n + 1
	il := i - 1
	length := float64(kn.l[j] - kn.l[il])
	s0, ss0 := kn.s[:stride], kn.ss[:stride]
	s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
	sv0 := s0[j] - s0[il]
	sv1 := s1[j] - s1[il]
	sse := kn.w2[0]*(ss0[j]-ss0[il]-sv0*sv0/length) +
		kn.w2[1]*(ss1[j]-ss1[il]-sv1*sv1/length)
	if sse < 0 {
		// Guard against tiny negative residues from cancellation.
		return 0
	}
	return sse
}

// mergeErr3 is the dedicated p = 3 merge cost.
func (kn *CostKernel) mergeErr3(i, j int) float64 {
	stride := kn.n + 1
	il := i - 1
	length := float64(kn.l[j] - kn.l[il])
	s0, ss0 := kn.s[:stride], kn.ss[:stride]
	s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
	s2, ss2 := kn.s[2*stride:3*stride], kn.ss[2*stride:3*stride]
	sv0 := s0[j] - s0[il]
	sv1 := s1[j] - s1[il]
	sv2 := s2[j] - s2[il]
	sse := kn.w2[0]*(ss0[j]-ss0[il]-sv0*sv0/length) +
		kn.w2[1]*(ss1[j]-ss1[il]-sv1*sv1/length) +
		kn.w2[2]*(ss2[j]-ss2[il]-sv2*sv2/length)
	if sse < 0 {
		return 0
	}
	return sse
}

// mergeErr4 is the dedicated p = 4 merge cost.
func (kn *CostKernel) mergeErr4(i, j int) float64 {
	stride := kn.n + 1
	il := i - 1
	length := float64(kn.l[j] - kn.l[il])
	s0, ss0 := kn.s[:stride], kn.ss[:stride]
	s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
	s2, ss2 := kn.s[2*stride:3*stride], kn.ss[2*stride:3*stride]
	s3, ss3 := kn.s[3*stride:4*stride], kn.ss[3*stride:4*stride]
	sv0 := s0[j] - s0[il]
	sv1 := s1[j] - s1[il]
	sv2 := s2[j] - s2[il]
	sv3 := s3[j] - s3[il]
	sse := kn.w2[0]*(ss0[j]-ss0[il]-sv0*sv0/length) +
		kn.w2[1]*(ss1[j]-ss1[il]-sv1*sv1/length) +
		kn.w2[2]*(ss2[j]-ss2[il]-sv2*sv2/length) +
		kn.w2[3]*(ss3[j]-ss3[il]-sv3*sv3/length)
	if sse < 0 {
		return 0
	}
	return sse
}

// mergeErrN is the p ≥ 5 merge cost: four independent accumulators over a
// four-wide unrolled pass across the dimension-major slabs, so consecutive
// iterations carry no dependency chain and the slab loads pipeline.
func (kn *CostKernel) mergeErrN(i, j int) float64 {
	stride := kn.n + 1
	il := i - 1
	length := float64(kn.l[j] - kn.l[il])
	s, ss, w2 := kn.s, kn.ss, kn.w2
	var a0, a1, a2, a3 float64
	d, base := 0, 0
	for ; d+4 <= kn.p; d, base = d+4, base+4*stride {
		b0, b1, b2, b3 := base, base+stride, base+2*stride, base+3*stride
		sv0 := s[b0+j] - s[b0+il]
		sv1 := s[b1+j] - s[b1+il]
		sv2 := s[b2+j] - s[b2+il]
		sv3 := s[b3+j] - s[b3+il]
		a0 += w2[d] * (ss[b0+j] - ss[b0+il] - sv0*sv0/length)
		a1 += w2[d+1] * (ss[b1+j] - ss[b1+il] - sv1*sv1/length)
		a2 += w2[d+2] * (ss[b2+j] - ss[b2+il] - sv2*sv2/length)
		a3 += w2[d+3] * (ss[b3+j] - ss[b3+il] - sv3*sv3/length)
	}
	for ; d < kn.p; d, base = d+1, base+stride {
		sv := s[base+j] - s[base+il]
		a0 += w2[d] * (ss[base+j] - ss[base+il] - sv*sv/length)
	}
	sse := (a0 + a1) + (a2 + a3)
	if sse < 0 {
		return 0
	}
	return sse
}

// rangeErr returns the merge-cost closure of the row-fill hot loops: the
// slab slices and the weights are hoisted into locals once per row fill, so
// the per-candidate evaluation is branch-light flat-slice arithmetic with
// the bounds checks lifted out of the inner loop. Each closure computes the
// exact expression of the matching mergeErr* method (same operand order),
// keeping MergeErr and the fills bitwise-consistent.
func (kn *CostKernel) rangeErr() func(i, j int) float64 {
	stride := kn.n + 1
	switch kn.p {
	case 1:
		s, ss, l, w20 := kn.s[:stride], kn.ss[:stride], kn.l[:stride], kn.w2[0]
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			length := float64(l[j] - l[i-1])
			sv := s[j] - s[i-1]
			e := w20 * (ss[j] - ss[i-1] - sv*sv/length)
			if e < 0 {
				return 0
			}
			return e
		}
	case 2:
		l := kn.l[:stride]
		s0, ss0 := kn.s[:stride], kn.ss[:stride]
		s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
		w20, w21 := kn.w2[0], kn.w2[1]
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			il := i - 1
			length := float64(l[j] - l[il])
			sv0 := s0[j] - s0[il]
			sv1 := s1[j] - s1[il]
			sse := w20*(ss0[j]-ss0[il]-sv0*sv0/length) +
				w21*(ss1[j]-ss1[il]-sv1*sv1/length)
			if sse < 0 {
				return 0
			}
			return sse
		}
	case 3:
		l := kn.l[:stride]
		s0, ss0 := kn.s[:stride], kn.ss[:stride]
		s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
		s2, ss2 := kn.s[2*stride:3*stride], kn.ss[2*stride:3*stride]
		w20, w21, w22 := kn.w2[0], kn.w2[1], kn.w2[2]
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			il := i - 1
			length := float64(l[j] - l[il])
			sv0 := s0[j] - s0[il]
			sv1 := s1[j] - s1[il]
			sv2 := s2[j] - s2[il]
			sse := w20*(ss0[j]-ss0[il]-sv0*sv0/length) +
				w21*(ss1[j]-ss1[il]-sv1*sv1/length) +
				w22*(ss2[j]-ss2[il]-sv2*sv2/length)
			if sse < 0 {
				return 0
			}
			return sse
		}
	case 4:
		l := kn.l[:stride]
		s0, ss0 := kn.s[:stride], kn.ss[:stride]
		s1, ss1 := kn.s[stride:2*stride], kn.ss[stride:2*stride]
		s2, ss2 := kn.s[2*stride:3*stride], kn.ss[2*stride:3*stride]
		s3, ss3 := kn.s[3*stride:4*stride], kn.ss[3*stride:4*stride]
		w20, w21, w22, w23 := kn.w2[0], kn.w2[1], kn.w2[2], kn.w2[3]
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			il := i - 1
			length := float64(l[j] - l[il])
			sv0 := s0[j] - s0[il]
			sv1 := s1[j] - s1[il]
			sv2 := s2[j] - s2[il]
			sv3 := s3[j] - s3[il]
			sse := w20*(ss0[j]-ss0[il]-sv0*sv0/length) +
				w21*(ss1[j]-ss1[il]-sv1*sv1/length) +
				w22*(ss2[j]-ss2[il]-sv2*sv2/length) +
				w23*(ss3[j]-ss3[il]-sv3*sv3/length)
			if sse < 0 {
				return 0
			}
			return sse
		}
	}
	return func(i, j int) float64 {
		if i == j {
			return 0
		}
		return kn.mergeErrN(i, j)
	}
}

// MonotoneSegments returns the piecewise-monotone segmentation of the
// sequence: the ascending 1-based start positions of maximal segments within
// which every aggregate dimension is monotone (non-decreasing or
// non-increasing, directions independent per dimension). Segmentation is
// greedy left to right — a segment extends until some dimension reverses the
// direction it established inside the segment — and every gap position also
// starts a new segment, so each segment lies inside one maximal gap-free
// run.
//
// Inside one segment the weighted merge cost satisfies the concave
// quadrangle inequality
//
//	MergeErr(a, e₁) + MergeErr(b, e₂) ≤ MergeErr(a, e₂) + MergeErr(b, e₁)
//
// for a ≤ b ≤ e₁ ≤ e₂ with all merges contained in the segment (the
// classical sorted 1-D k-means Monge property, summed over dimensions), so
// the DP candidate matrix restricted to a segment's cells and in-segment
// split points is totally monotone and the FillDC/FillSMAWK row fills apply
// there; across a segment boundary the inequality genuinely fails (e.g.
// values 0, 100, 0), which is why the fills complete each cell with a
// pruned scan over the out-of-segment candidates (see fill.go).
//
// The segmentation is computed at most once per kernel under a sync.Once,
// so, unlike most kernel methods, MonotoneSegments (and MonotoneRuns /
// MonotoneCoverage) is safe to call from concurrent goroutines sharing one
// kernel. Callers must not mutate the returned slice.
func (kn *CostKernel) MonotoneSegments() []int32 {
	kn.monoOnce.Do(kn.computeSegments)
	return kn.monoSegs
}

// MonotoneRuns reports whether every maximal gap-free run is monotone in
// every dimension as a whole — the shape of cumulative counters and other
// accumulating series, and the strongest certificate: the monotone row
// fills then apply to entire rows. Equivalent to the piecewise segmentation
// having exactly one segment per run.
func (kn *CostKernel) MonotoneRuns() bool {
	kn.monoOnce.Do(kn.computeSegments)
	if kn.n == 0 {
		return true
	}
	return len(kn.monoSegs) == len(kn.gaps)+1
}

// MonotoneCoverage reports the fraction of rows lying inside monotone
// segments long enough for the per-segment fill dispatch to engage (see
// fillSegmentMin) — the share of the series that gets the monotone-fill
// speedup. 1.0 on counter-like data, 0.0 on pure oscillating noise. The
// value is cached alongside the segmentation, so repeated queries (Solver
// Deepen rounds, /v1/stats scrapes) cost a Once check, not a rescan.
func (kn *CostKernel) MonotoneCoverage() float64 {
	kn.monoOnce.Do(kn.computeSegments)
	return kn.monoCov
}

// computeSegments materializes the piecewise-monotone segmentation (1-based
// segment starts) and the derived dispatch coverage. Runs once per kernel
// under monoOnce.
func (kn *CostKernel) computeSegments() {
	kn.certifies.Add(1)
	if kn.n == 0 {
		kn.monoSegs = []int32{}
		return
	}
	rows := kn.seq.Rows
	dirs := make([]int8, kn.p)
	segs := make([]int32, 0, len(kn.gaps)+1)
	segment := func(lo, hi int) { // 0-based inclusive row range of one run
		segs = append(segs, int32(lo+1))
		clear(dirs)
		for r := lo + 1; r <= hi; r++ {
			split := false
			for d := 0; d < kn.p && !split; d++ {
				prev, v := rows[r-1].Aggs[d], rows[r].Aggs[d]
				switch {
				case v > prev:
					if dirs[d] < 0 {
						split = true
					}
					dirs[d] = 1
				case v < prev:
					if dirs[d] > 0 {
						split = true
					}
					dirs[d] = -1
				}
			}
			if split {
				// Rows r−1 and r cannot share a segment: r starts a new one
				// and directions reset (the pair across the boundary
				// establishes nothing inside the new segment).
				segs = append(segs, int32(r+1))
				clear(dirs)
			}
		}
	}
	start := 0
	for _, g := range kn.gaps {
		segment(start, g-1)
		start = g
	}
	segment(start, kn.n-1)
	kn.monoSegs = segs
	covered := 0
	for si, sstart := range segs {
		end := kn.n
		if si+1 < len(segs) {
			end = int(segs[si+1]) - 1
		}
		if m := end - int(sstart) + 1; m >= fillSegmentMin {
			covered += m
		}
	}
	kn.monoCov = float64(covered) / float64(kn.n)
}

// HasGap reports whether the run s_i..s_j (1-based, inclusive) contains at
// least one non-adjacent pair.
func (kn *CostKernel) HasGap(i, j int) bool {
	if i >= j {
		return false
	}
	// The run has a gap iff some gap position l satisfies i ≤ l < j.
	k := sort.SearchInts(kn.gaps, i)
	return k < len(kn.gaps) && kn.gaps[k] < j
}

// RightmostGapBefore returns the largest gap position strictly smaller than
// i, or 0 when there is none. It is the j_min bound of Section 5.3.
func (kn *CostKernel) RightmostGapBefore(i int) int {
	k := sort.SearchInts(kn.gaps, i)
	if k == 0 {
		return 0
	}
	return kn.gaps[k-1]
}

// MergeErrAll returns the error of merging s_i..s_j into one tuple, or Inf
// when the run crosses a gap or group boundary.
func (kn *CostKernel) MergeErrAll(i, j int) float64 {
	if kn.HasGap(i, j) {
		return Inf
	}
	return kn.MergeErr(i, j)
}

// MaxError returns SSEmax = SSE(s, ρ(s, cmin)): the error of the maximal
// reduction that merges every maximal adjacent run into a single tuple.
func (kn *CostKernel) MaxError() float64 {
	if kn.n == 0 {
		return 0
	}
	var total float64
	start := 1
	for _, g := range kn.gaps {
		total += kn.MergeErr(start, g)
		start = g + 1
	}
	total += kn.MergeErr(start, kn.n)
	return total
}

// MergeRange builds the tuple s_i ⊕ ... ⊕ s_j (1-based, inclusive): the
// grouping values of s_i, the concatenated timestamp, and length-weighted
// average aggregate values (Definition 3 applied associatively).
func (kn *CostKernel) MergeRange(i, j int) temporal.SeqRow {
	kn.validateBounds(i, j)
	first, last := kn.seq.Rows[i-1], kn.seq.Rows[j-1]
	length := float64(kn.l[j] - kn.l[i-1])
	stride := kn.n + 1
	aggs := make([]float64, kn.p)
	for d := 0; d < kn.p; d++ {
		aggs[d] = (kn.s[d*stride+j] - kn.s[d*stride+i-1]) / length
	}
	return temporal.SeqRow{
		Group: first.Group,
		Aggs:  aggs,
		T:     temporal.Interval{Start: first.T.Start, End: last.T.End},
	}
}

// validateBounds panics on malformed 1-based run bounds; exported entry
// points validate their arguments instead, so this is a defensive check for
// internal callers only.
func (kn *CostKernel) validateBounds(i, j int) {
	if i < 1 || j > kn.n || i > j {
		panic(fmt.Sprintf("core: run bounds [%d, %d] out of range 1..%d", i, j, kn.n))
	}
}
