package core

import (
	"fmt"
	"sort"

	"repro/internal/temporal"
)

// CostKernel is the shared merge-cost kernel behind every exact PTA
// evaluation: the auxiliary prefix structures of Section 5.2 for a
// sequential relation s of size n with p aggregate attributes, stored as
// flat, contiguous slabs so the DP inner loops stream over cache lines
// instead of chasing per-dimension row pointers:
//
//	s[d·(n+1)+i]  = Σ_{j≤i} |s_j.T| · s_j.B_d        (length-weighted value sums)
//	ss[d·(n+1)+i] = Σ_{j≤i} |s_j.T| · s_j.B_d²       (length-weighted square sums)
//	l[i]          = Σ_{j≤i} |s_j.T|                   (timestamp lengths)
//	gaps          = positions of non-adjacent tuple pairs (the gap vector)
//
// With them the error of merging any gap-free run s_i..s_j into one tuple is
// computed in O(p) time (Proposition 1) by MergeErr. Building a kernel costs
// O(np) time and space (the slabs come from Options.Scratch when one is
// provided); in the paper this work is folded into the ITA scan.
//
// One kernel serves any number of row fills over the same sequence — the DP
// evaluators, DPMulti, the incremental Solver and the parallel run curves
// all draw their merge costs from here, so the cost arithmetic exists
// exactly once.
type CostKernel struct {
	seq  *temporal.Sequence
	n, p int
	w2   []float64
	s    []float64 // [p*(n+1)] flat, dimension-major; index 0 of each slab is the empty prefix
	ss   []float64 // [p*(n+1)] flat, dimension-major
	l    []int64   // [n+1]
	gaps []int     // 1-based positions l with s_l ⊀ s_{l+1}, ascending

	monotoneState uint8 // MonotoneRuns cache: 0 unknown, 1 certified, 2 violated
}

// NewKernel validates the sequence and the options and builds the cost
// kernel. When opts.Scratch is set, the prefix slabs are drawn from it and
// stay valid only for the current evaluation; retained states (Solver,
// MatrixSet) must build kernels without a Scratch.
func NewKernel(seq *temporal.Sequence, opts Options) (*CostKernel, error) {
	w2, err := opts.weightsSquared(seq.P())
	if err != nil {
		return nil, err
	}
	n, p := seq.Len(), seq.P()
	kn := &CostKernel{
		seq:  seq,
		n:    n,
		p:    p,
		w2:   w2,
		gaps: seq.GapPositions(),
	}
	if sc := opts.Scratch; sc != nil {
		kn.s, kn.ss, kn.l = sc.kernelSlabs(n, p)
	} else {
		kn.s = make([]float64, p*(n+1))
		kn.ss = make([]float64, p*(n+1))
		kn.l = make([]int64, n+1)
	}
	stride := n + 1
	kn.l[0] = 0
	for d := 0; d < p; d++ {
		kn.s[d*stride] = 0
		kn.ss[d*stride] = 0
	}
	for i := 1; i <= n; i++ {
		row := seq.Rows[i-1]
		length := float64(row.T.Len())
		kn.l[i] = kn.l[i-1] + row.T.Len()
		for d := 0; d < p; d++ {
			v := row.Aggs[d]
			kn.s[d*stride+i] = kn.s[d*stride+i-1] + length*v
			kn.ss[d*stride+i] = kn.ss[d*stride+i-1] + length*v*v
		}
	}
	return kn, nil
}

// N returns the sequence size n.
func (kn *CostKernel) N() int { return kn.n }

// P returns the number of aggregate attributes p.
func (kn *CostKernel) P() int { return kn.p }

// Sequence returns the underlying sequential relation.
func (kn *CostKernel) Sequence() *temporal.Sequence { return kn.seq }

// Gaps returns the gap vector G: the ascending 1-based positions l at which
// rows l and l+1 are non-adjacent.
func (kn *CostKernel) Gaps() []int { return kn.gaps }

// CMin returns the smallest reachable reduction size (number of maximal
// adjacent runs).
func (kn *CostKernel) CMin() int {
	if kn.n == 0 {
		return 0
	}
	return len(kn.gaps) + 1
}

// MergeErr returns the error of merging the (assumed gap-free) run s_i..s_j
// into one tuple, per Proposition 1. Indices are 1-based and inclusive,
// 1 ≤ i ≤ j ≤ n. The one-dimensional case — most of the paper's queries —
// is a handful of flat loads with no inner loop.
func (kn *CostKernel) MergeErr(i, j int) float64 {
	if i == j {
		return 0 // a single tuple merges into itself without error
	}
	if kn.p == 1 {
		length := float64(kn.l[j] - kn.l[i-1])
		sv := kn.s[j] - kn.s[i-1]
		e := kn.w2[0] * (kn.ss[j] - kn.ss[i-1] - sv*sv/length)
		if e < 0 {
			// Guard against tiny negative residues from cancellation.
			return 0
		}
		return e
	}
	return kn.mergeErrWide(i, j)
}

// mergeErrWide is the general multi-attribute merge cost, kept out of
// MergeErr so the p = 1 fast path stays small.
func (kn *CostKernel) mergeErrWide(i, j int) float64 {
	length := float64(kn.l[j] - kn.l[i-1])
	stride := kn.n + 1
	var sse float64
	for d := 0; d < kn.p; d++ {
		base := d * stride
		sv := kn.s[base+j] - kn.s[base+i-1]
		sse += kn.w2[d] * (kn.ss[base+j] - kn.ss[base+i-1] - sv*sv/length)
	}
	// Guard against tiny negative residues from cancellation.
	if sse < 0 {
		return 0
	}
	return sse
}

// rangeErr returns the merge-cost closure of the row-fill hot loops: the
// slab slices and the weight are hoisted into locals once per row fill, so
// the per-candidate evaluation is branch-light flat-slice arithmetic with
// the bounds checks lifted out of the inner loop.
func (kn *CostKernel) rangeErr() func(i, j int) float64 {
	if kn.p == 1 {
		s, ss, l, w20 := kn.s[:kn.n+1], kn.ss[:kn.n+1], kn.l[:kn.n+1], kn.w2[0]
		return func(i, j int) float64 {
			if i == j {
				return 0
			}
			length := float64(l[j] - l[i-1])
			sv := s[j] - s[i-1]
			e := w20 * (ss[j] - ss[i-1] - sv*sv/length)
			if e < 0 {
				return 0
			}
			return e
		}
	}
	return func(i, j int) float64 {
		if i == j {
			return 0
		}
		return kn.mergeErrWide(i, j)
	}
}

// MonotoneRuns reports whether, within every maximal gap-free run and for
// every aggregate dimension independently, the values are monotone
// (non-decreasing or non-increasing) — the shape of cumulative counters,
// ramping gauges and other accumulating series. Under this precondition the
// weighted merge cost satisfies the concave quadrangle inequality
//
//	MergeErr(a, e₁) + MergeErr(b, e₂) ≤ MergeErr(a, e₂) + MergeErr(b, e₁)
//
// for a ≤ b ≤ e₁ ≤ e₂ inside one run (the classical sorted 1-D k-means
// Monge property), which makes DP split points monotone across a row and
// unlocks the FillDC/FillSMAWK row fills. On oscillating data the
// inequality genuinely fails (e.g. values 0, 100, 0), so the monotone fills
// consult this certificate and fall back to the scan when it does not hold.
// The answer is computed once per kernel and cached; like every kernel
// method it must not be called concurrently with itself.
func (kn *CostKernel) MonotoneRuns() bool {
	if kn.monotoneState == 0 {
		kn.monotoneState = 2
		if kn.computeMonotone() {
			kn.monotoneState = 1
		}
	}
	return kn.monotoneState == 1
}

func (kn *CostKernel) computeMonotone() bool {
	if kn.n == 0 {
		return true
	}
	rows := kn.seq.Rows
	check := func(lo, hi int) bool { // 0-based inclusive row range of one run
		for d := 0; d < kn.p; d++ {
			dir := 0
			prev := rows[lo].Aggs[d]
			for r := lo + 1; r <= hi; r++ {
				v := rows[r].Aggs[d]
				switch {
				case v > prev:
					if dir < 0 {
						return false
					}
					dir = 1
				case v < prev:
					if dir > 0 {
						return false
					}
					dir = -1
				}
				prev = v
			}
		}
		return true
	}
	start := 0
	for _, g := range kn.gaps {
		if !check(start, g-1) {
			return false
		}
		start = g
	}
	return check(start, kn.n-1)
}

// HasGap reports whether the run s_i..s_j (1-based, inclusive) contains at
// least one non-adjacent pair.
func (kn *CostKernel) HasGap(i, j int) bool {
	if i >= j {
		return false
	}
	// The run has a gap iff some gap position l satisfies i ≤ l < j.
	k := sort.SearchInts(kn.gaps, i)
	return k < len(kn.gaps) && kn.gaps[k] < j
}

// RightmostGapBefore returns the largest gap position strictly smaller than
// i, or 0 when there is none. It is the j_min bound of Section 5.3.
func (kn *CostKernel) RightmostGapBefore(i int) int {
	k := sort.SearchInts(kn.gaps, i)
	if k == 0 {
		return 0
	}
	return kn.gaps[k-1]
}

// MergeErrAll returns the error of merging s_i..s_j into one tuple, or Inf
// when the run crosses a gap or group boundary.
func (kn *CostKernel) MergeErrAll(i, j int) float64 {
	if kn.HasGap(i, j) {
		return Inf
	}
	return kn.MergeErr(i, j)
}

// MaxError returns SSEmax = SSE(s, ρ(s, cmin)): the error of the maximal
// reduction that merges every maximal adjacent run into a single tuple.
func (kn *CostKernel) MaxError() float64 {
	if kn.n == 0 {
		return 0
	}
	var total float64
	start := 1
	for _, g := range kn.gaps {
		total += kn.MergeErr(start, g)
		start = g + 1
	}
	total += kn.MergeErr(start, kn.n)
	return total
}

// MergeRange builds the tuple s_i ⊕ ... ⊕ s_j (1-based, inclusive): the
// grouping values of s_i, the concatenated timestamp, and length-weighted
// average aggregate values (Definition 3 applied associatively).
func (kn *CostKernel) MergeRange(i, j int) temporal.SeqRow {
	kn.validateBounds(i, j)
	first, last := kn.seq.Rows[i-1], kn.seq.Rows[j-1]
	length := float64(kn.l[j] - kn.l[i-1])
	stride := kn.n + 1
	aggs := make([]float64, kn.p)
	for d := 0; d < kn.p; d++ {
		aggs[d] = (kn.s[d*stride+j] - kn.s[d*stride+i-1]) / length
	}
	return temporal.SeqRow{
		Group: first.Group,
		Aggs:  aggs,
		T:     temporal.Interval{Start: first.T.Start, End: last.T.End},
	}
}

// validateBounds panics on malformed 1-based run bounds; exported entry
// points validate their arguments instead, so this is a defensive check for
// internal callers only.
func (kn *CostKernel) validateBounds(i, j int) {
	if i < 1 || j > kn.n || i > j {
		panic(fmt.Sprintf("core: run bounds [%d, %d] out of range 1..%d", i, j, kn.n))
	}
}
