package core

import (
	"fmt"

	"repro/internal/temporal"
)

// MultiBudget is one budget of a DPMulti evaluation: C > 0 requests a
// size-bounded reduction to at most C tuples, otherwise Eps requests an
// error-bounded reduction to at most Eps·SSEmax introduced error.
type MultiBudget struct {
	C   int
	Eps float64
}

// DPMulti evaluates several budgets over the same sequence with one filling
// of the DP matrices: the error and split-point rows are shared by every
// budget, so serving B budgets costs one evaluation to the deepest row any
// budget needs instead of B independent evaluations. This is what makes
// serving multiple resolutions of the same series cheap (pta's
// Engine.CompressMany builds on it).
//
// Results align with budgets. Stats on every result reports the work of the
// single shared pass, not a per-budget share. An infeasible size budget
// (below cmin) fails the whole call with an InfeasibleSizeError.
func DPMulti(seq *temporal.Sequence, budgets []MultiBudget, opts Options, pruneI, pruneJ bool) ([]*DPResult, error) {
	if seq.Len() > 0 && len(budgets) > 0 {
		kn, err := NewKernel(seq, opts)
		if err != nil {
			return nil, err
		}
		return DPMultiKernel(kn, budgets, opts, pruneI, pruneJ)
	}
	results := make([]*DPResult, len(budgets))
	for i, b := range budgets {
		if b.C > 0 {
			return nil, fmt.Errorf("core: size bound %d for an empty relation", b.C)
		}
		if b.Eps < 0 || b.Eps > 1 {
			return nil, fmt.Errorf("core: error bound %v outside [0, 1]", b.Eps)
		}
		results[i] = &DPResult{Sequence: seq.WithRows(nil), C: 0}
	}
	return results, nil
}

// DPMultiKernel is DPMulti over a prebuilt cost kernel: callers that answer
// several budget groups of one series (Engine.CompressMany) build the
// kernel once and share its prefix slabs across every group's matrix pass.
// opts must be the options the kernel was built with (weights are baked
// into the kernel).
func DPMultiKernel(kn *CostKernel, budgets []MultiBudget, opts Options, pruneI, pruneJ bool) ([]*DPResult, error) {
	seq := kn.Sequence()
	n := kn.N()
	results := make([]*DPResult, len(budgets))
	if len(budgets) == 0 {
		return results, nil
	}
	cmin := kn.CMin()

	// Per-budget validation and the target row of the shared pass: the
	// largest size bound below n, plus every unmet error bound.
	targetK := 0
	pendingEps := 0
	bounds := make([]float64, len(budgets)) // eps budgets: absolute bound
	reachedK := make([]int, len(budgets))   // eps budgets: first feasible row
	var maxErr float64
	maxErrKnown := false
	for i, b := range budgets {
		if b.C > 0 {
			if b.C < cmin {
				return nil, &InfeasibleSizeError{C: b.C, CMin: cmin}
			}
			if b.C < n {
				targetK = max(targetK, b.C)
			}
			continue
		}
		if b.Eps < 0 || b.Eps > 1 {
			return nil, fmt.Errorf("core: error bound %v outside [0, 1]", b.Eps)
		}
		if !maxErrKnown {
			maxErr = kn.MaxError()
			maxErrKnown = true
		}
		bounds[i] = acceptErrorBound(b.Eps*maxErr, maxErr)
		pendingEps++
	}

	st := newDPState(kn, opts, pruneI, pruneJ, true)
	rowErr := make([]float64, n+1) // rowErr[k] = E[k][n]
	for k := 1; k <= n && (k <= targetK || pendingEps > 0); k++ {
		e, err := st.fillRow(k)
		if err != nil {
			return nil, err
		}
		rowErr[k] = e
		for i, b := range budgets {
			if b.C > 0 || reachedK[i] != 0 {
				continue
			}
			if e <= bounds[i] {
				reachedK[i] = k
				pendingEps--
			}
		}
	}

	for i, b := range budgets {
		k := reachedK[i]
		if b.C > 0 {
			if b.C >= n {
				results[i] = &DPResult{Sequence: seq.Clone(), C: n, Stats: st.stats}
				continue
			}
			k = b.C
		}
		if k == 0 {
			// E[n][n] = 0 means every error bound is reached by row n.
			panic("core: multi-budget DP left a budget unserved")
		}
		results[i] = &DPResult{
			Sequence: seq.WithRows(st.reconstruct(k)),
			C:        k,
			Error:    rowErr[k],
			Stats:    st.stats,
		}
	}
	return results, nil
}
