package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

// TestGMSBridgedCrossesGaps: with bridging, the running example's group A
// can reach a single tuple per group (GroupCount = 2 < cmin = 3).
func TestGMSBridgedCrossesGaps(t *testing.T) {
	seq := figure1c()
	if GroupCount(seq) != 2 {
		t.Fatalf("GroupCount = %d, want 2", GroupCount(seq))
	}
	res, err := GMSBridged(seq, 2, Options{})
	if err != nil {
		t.Fatalf("GMSBridged: %v", err)
	}
	if res.C != 2 {
		t.Fatalf("C = %d, want 2 (below the classic cmin 3)", res.C)
	}
	// Group B merges 500@[4,5] with 500@[7,8]: value stays 500, the span
	// bridges the gap, and no error is charged for equal values.
	var bRow *temporal.SeqRow
	for i := range res.Sequence.Rows {
		r := &res.Sequence.Rows[i]
		if res.Sequence.Groups.Values(r.Group)[0].Text() == "B" {
			bRow = r
		}
	}
	if bRow == nil {
		t.Fatal("no group-B row")
	}
	if bRow.Aggs[0] != 500 || bRow.T != (temporal.Interval{Start: 4, End: 8}) {
		t.Errorf("bridged B row = %v %v, want 500 over [4, 8]", bRow.Aggs[0], bRow.T)
	}
}

// TestGMSBridgedCoveredWeights: the bridged merge weights values by covered
// chronons, not by the spanned interval. Two 1-chronon tuples (10 and 30)
// separated by a 98-chronon gap must average to 20, not to a span-weighted
// value.
func TestGMSBridgedCoveredWeights(t *testing.T) {
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	seq.Rows = []temporal.SeqRow{
		{Group: gid, Aggs: []float64{10}, T: temporal.Inst(0)},
		{Group: gid, Aggs: []float64{30}, T: temporal.Inst(99)},
	}
	res, err := GMSBridged(seq, 1, Options{})
	if err != nil {
		t.Fatalf("GMSBridged: %v", err)
	}
	if res.C != 1 {
		t.Fatalf("C = %d, want 1", res.C)
	}
	row := res.Sequence.Rows[0]
	if row.Aggs[0] != 20 {
		t.Errorf("bridged mean = %v, want 20", row.Aggs[0])
	}
	if row.T != (temporal.Interval{Start: 0, End: 99}) {
		t.Errorf("bridged span = %v", row.T)
	}
	// Error: 1·(10−20)² + 1·(30−20)² = 200 — covered chronons only.
	if math.Abs(res.Error-200) > 1e-9 {
		t.Errorf("bridged error = %v, want 200", res.Error)
	}
}

// TestGMSBridgedNeverCrossesGroups: group boundaries stay hard.
func TestGMSBridgedNeverCrossesGroups(t *testing.T) {
	seq := figure1c()
	res, err := GMSBridged(seq, 1, Options{})
	if err != nil {
		t.Fatalf("GMSBridged: %v", err)
	}
	if res.C != 2 {
		t.Errorf("C = %d; merging below the group count must be impossible", res.C)
	}
}

// TestGMSBridgedPropMatchesGMSWithoutGaps: on gap-free single-group data
// bridging changes nothing.
func TestGMSBridgedPropMatchesGMSWithoutGaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(30), 1+rng.Intn(2), 0)
		c := 1 + rng.Intn(seq.Len())
		a, err1 := GMS(seq, c, Options{})
		b, err2 := GMSBridged(seq, c, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Sequence.Equal(a.Sequence, 1e-9) &&
			math.Abs(a.Error-b.Error) <= 1e-9*(1+a.Error)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGMSBridgedPropValid: results keep (group, time) order, cover at least
// the original chronons, and can reach GroupCount.
func TestGMSBridgedPropValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, 2+rng.Intn(30), 1, 0.3)
		res, err := GMSBridged(seq, 1, Options{})
		if err != nil {
			return false
		}
		if res.C != GroupCount(seq) {
			return false
		}
		// Rows must still be disjoint and ordered within groups.
		for i := 0; i+1 < res.Sequence.Len(); i++ {
			a, b := res.Sequence.Rows[i], res.Sequence.Rows[i+1]
			if a.Group == b.Group && a.T.End >= b.T.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomSampleEstimate: on data whose magnitude grows over time, random
// sampling estimates SSEmax far better than a prefix sample.
func TestRandomSampleEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seq := temporal.NewSequence(nil, []string{"v"})
	gid := seq.Groups.Intern(nil)
	for i := 0; i < 4000; i++ {
		// Exponential growth with noise: late rows dominate SSEmax.
		v := math.Exp(float64(i)/800) * (1 + 0.2*rng.Float64())
		seq.Rows = append(seq.Rows, temporal.SeqRow{
			Group: gid, Aggs: []float64{v}, T: temporal.Inst(temporal.Chronon(i))})
	}
	px, err := NewKernel(seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := px.MaxError()

	prefix := seq.WithRows(seq.Rows[:400])
	prefixEst, err := SampleEstimate(prefix, (seq.Len()+1)/2, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	randomEst, err := RandomSampleEstimate(seq, 0.1, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prefixErrRatio := math.Abs(prefixEst.EMax-truth) / truth
	randomErrRatio := math.Abs(randomEst.EMax-truth) / truth
	if randomErrRatio >= prefixErrRatio {
		t.Errorf("random sampling (off by %.2f×truth) should beat prefix sampling (off by %.2f×truth)",
			randomErrRatio, prefixErrRatio)
	}
	if randomErrRatio > 0.5 {
		t.Errorf("random estimate off by %.2f× truth; want within 50%%", randomErrRatio)
	}
	if randomEst.N != seq.Len() {
		t.Errorf("N = %d, want %d", randomEst.N, seq.Len())
	}
}

func TestRandomSampleEstimateValidation(t *testing.T) {
	seq := figure1c()
	if _, err := RandomSampleEstimate(seq, 0, 1, Options{}); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, err := RandomSampleEstimate(seq, 2, 1, Options{}); err == nil {
		t.Error("fraction 2 should fail")
	}
	est, err := RandomSampleEstimate(seq, 1, 1, Options{})
	if err != nil {
		t.Fatalf("full-fraction sample: %v", err)
	}
	px, _ := NewKernel(seq, Options{})
	if math.Abs(est.EMax-px.MaxError()) > 1e-9*(1+px.MaxError()) {
		t.Errorf("full sample estimate %v should equal SSEmax %v", est.EMax, px.MaxError())
	}
	empty := temporal.NewSequence(nil, []string{"v"})
	if est, err := RandomSampleEstimate(empty, 0.5, 1, Options{}); err != nil || est.N != 0 {
		t.Errorf("empty sequence: %v, %v", est, err)
	}
}
