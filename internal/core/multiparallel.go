package core

import (
	"fmt"

	"repro/internal/temporal"
)

// DPMultiParallel serves several budgets from one run-decomposed parallel
// evaluation: per-run error curves are computed once, concurrently, on
// workers goroutines (0 = GOMAXPROCS), then every budget is answered from
// the shared curves by the combination DP — the multi-budget analogue of
// PTAcParallel/PTAeParallel, and the parallel analogue of DPMultiKernel.
//
// Each result is bit-identical to the corresponding single-budget parallel
// evaluation (and therefore to the serial DP wherever that holds): curves
// are truncated to K−R+1 rows for a total size of K exactly as the
// single-budget evaluators truncate, which the allocation DP provably never
// notices — a run can only receive more than K−R+1 tuples if some other run
// receives none.
//
// Error-bounded budgets deepen iteratively: K doubles until every bound is
// met, and the retained per-run fill states extend their curves in place,
// so mixed batches pay one curve set regardless of how many budgets ride
// on it. Every result carries the aggregate fill stats of the shared
// curves, mirroring DPMultiKernel's accounting of the shared pass.
func DPMultiParallel(seq *temporal.Sequence, budgets []MultiBudget, opts Options, workers int) ([]*DPResult, error) {
	n := seq.Len()
	results := make([]*DPResult, len(budgets))
	if n == 0 {
		for i, b := range budgets {
			if b.C > 0 {
				return nil, fmt.Errorf("core: size bound %d for an empty relation", b.C)
			}
			if b.Eps < 0 || b.Eps > 1 {
				return nil, fmt.Errorf("core: error bound %v outside [0, 1]", b.Eps)
			}
			results[i] = &DPResult{Sequence: seq.WithRows(nil), C: 0}
		}
		return results, nil
	}
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return nil, err
	}
	cmin := kn.CMin()

	// Validate every budget and derive the curve depth the size budgets
	// need; error bounds resolve against eps·SSEmax with the shared
	// acceptance tolerance.
	targetK := 0
	pendingEps := 0
	bounds := make([]float64, len(budgets))
	maxErrKnown := false
	var maxErr float64
	for i, b := range budgets {
		if b.C > 0 {
			if b.C < cmin {
				return nil, &InfeasibleSizeError{C: b.C, CMin: cmin}
			}
			if b.C < n {
				targetK = max(targetK, b.C)
			}
			continue
		}
		if b.Eps < 0 || b.Eps > 1 {
			return nil, fmt.Errorf("core: error bound %v outside [0, 1]", b.Eps)
		}
		if !maxErrKnown {
			maxErr = kn.MaxError()
			maxErrKnown = true
		}
		bounds[i] = acceptErrorBound(b.Eps*maxErr, maxErr)
		pendingEps++
	}

	runs := decomposeRuns(kn)
	R := len(runs)
	var final []float64
	var choice [][]int32
	reachedK := make([]int, len(budgets)) // resolved size per eps budget; 0 = pending
	K := targetK
	if pendingEps > 0 {
		// Error bounds start from the same deepening floor as PTAeParallel
		// so a lone eps budget does identical work; coexisting size budgets
		// only ever raise K, never change which k first fits a bound.
		K = max(K, min(n, R+63))
	}
	for K > 0 {
		if err := computeCurves(seq, runs, K-R+1, opts, workers); err != nil {
			return nil, err
		}
		final, choice = allocateRuns(runs, K)
		for i, b := range budgets {
			if b.C > 0 || reachedK[i] != 0 {
				continue
			}
			for k := R; k <= K; k++ {
				if final[k] <= bounds[i] {
					reachedK[i] = k
					pendingEps--
					break
				}
			}
		}
		if pendingEps == 0 {
			break
		}
		if K == n {
			// A[n] = 0 meets every bound; reaching this point means the
			// curve combination is broken.
			panic("core: multi-budget parallel DP did not terminate")
		}
		K = min(n, 2*K)
	}

	stats := curveStats(runs)
	for i, b := range budgets {
		k := reachedK[i]
		if b.C > 0 {
			if b.C >= n {
				results[i] = &DPResult{Sequence: seq.Clone(), C: n, Stats: stats}
				continue
			}
			k = b.C
		}
		if k == 0 {
			panic("core: multi-budget parallel DP left a budget unserved")
		}
		rows, err := reconstructRuns(kn, runs, choice, k)
		if err != nil {
			return nil, err
		}
		results[i] = &DPResult{
			Sequence: seq.WithRows(rows),
			C:        k,
			Error:    final[k],
			Stats:    stats,
		}
	}
	return results, nil
}
