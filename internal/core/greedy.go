package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/temporal"
)

// Stream yields the rows of a sequential relation in (group, time) order.
// ita.Iterator implements it, so the greedy evaluators can merge while the
// ITA result is still being produced; SliceStream adapts an in-memory
// sequence.
type Stream interface {
	// Next returns the next row, or ok=false at the end of the stream.
	Next() (row temporal.SeqRow, ok bool)
	// Sequence returns row-less result metadata (grouping attributes,
	// aggregate names, shared group dictionary).
	Sequence() *temporal.Sequence
}

// SliceStream adapts an in-memory sequence to the Stream interface.
type SliceStream struct {
	seq *temporal.Sequence
	i   int
}

// NewSliceStream returns a stream over the rows of seq.
func NewSliceStream(seq *temporal.Sequence) *SliceStream { return &SliceStream{seq: seq} }

// Next implements Stream.
func (s *SliceStream) Next() (temporal.SeqRow, bool) {
	if s.i >= len(s.seq.Rows) {
		return temporal.SeqRow{}, false
	}
	row := s.seq.Rows[s.i]
	s.i++
	return row, true
}

// Sequence implements Stream.
func (s *SliceStream) Sequence() *temporal.Sequence { return s.seq.WithRows(nil) }

// GreedyResult is the outcome of a greedy PTA evaluation.
type GreedyResult struct {
	// Sequence is the reduced sequential relation.
	Sequence *temporal.Sequence
	// C is the size of the result.
	C int
	// Error is the accumulated merge error SSE(s, z).
	Error float64
	// Merges is the number of merge steps performed.
	Merges int
	// MaxHeap is the largest number of tuples simultaneously held in the
	// heap (c+β of the complexity analysis).
	MaxHeap int
	// ReadAhead is β = MaxHeap − c (never negative).
	ReadAhead int
}

// greedyState carries the heap, the linked intermediate relation, and the
// gap bookkeeping (LastGapId, BG, AG) shared by GMS, GPTAc and GPTAe.
type greedyState struct {
	w2      []float64
	h       mergeHeap
	tail    *node
	nextID  int
	lastGap int // LastGapId: id of the most recent node inserted with key=Inf
	bg, ag  int // nodes currently before/after the last gap

	totalError float64
	merges     int
	maxHeap    int

	// Run accumulators for the exact SSEmax (used by GPTAe's final phase):
	// per-dimension length-weighted sums over the current maximal adjacent
	// run of *incoming* rows.
	trueEmax  float64
	runLen    float64
	runSV     []float64
	runSSV    []float64
	runActive bool

	// onMerge, when set, observes every merge for tests and tracing.
	onMerge func(n *node)

	// opts retains the evaluation options for cancellation polling.
	opts Options
	// steps counts inserts and merges since the last context poll.
	steps int
}

func newGreedyState(p int, opts Options) (*greedyState, error) {
	w2, err := opts.weightsSquared(p)
	if err != nil {
		return nil, err
	}
	return &greedyState{
		w2:     w2,
		opts:   opts,
		runSV:  make([]float64, p),
		runSSV: make([]float64, p),
	}, nil
}

// checkCancel polls the context every cancelCheckCells inserts/merges, so
// streaming over an unbounded source aborts promptly on cancellation.
func (g *greedyState) checkCancel() error {
	g.steps++
	if g.steps < cancelCheckCells {
		return nil
	}
	g.steps = 0
	return g.opts.canceled()
}

// insert appends one incoming row to the intermediate relation and the heap
// and maintains the gap counters and the exact-SSEmax run accumulators.
func (g *greedyState) insert(row temporal.SeqRow) *node {
	g.nextID++
	n := &node{id: g.nextID, row: row, key: Inf}
	if g.tail != nil {
		n.prev = g.tail
		g.tail.next = n
		if RowsAdjacent(g.tail.row, row) {
			n.key = Dissimilarity(g.tail.row, row, g.w2)
		}
	}
	g.tail = n
	g.h.push(n)
	if g.h.len() > g.maxHeap {
		g.maxHeap = g.h.len()
	}

	if n.key == Inf {
		// A new maximal adjacent run starts (first tuple, group change, or
		// temporal gap): per Fig. 11 lines 7-10.
		g.lastGap = n.id
		g.bg += g.ag
		g.ag = 1
		g.closeRun()
	} else {
		g.ag++
	}
	g.extendRun(row)
	return n
}

// extendRun and closeRun accumulate the exact SSEmax over incoming rows.
func (g *greedyState) extendRun(row temporal.SeqRow) {
	l := float64(row.T.Len())
	g.runLen += l
	for d, v := range row.Aggs {
		g.runSV[d] += l * v
		g.runSSV[d] += l * v * v
	}
	g.runActive = true
}

func (g *greedyState) closeRun() {
	if !g.runActive {
		return
	}
	var sse float64
	for d := range g.runSV {
		sse += g.w2[d] * (g.runSSV[d] - g.runSV[d]*g.runSV[d]/g.runLen)
		g.runSV[d], g.runSSV[d] = 0, 0
	}
	if sse > 0 {
		g.trueEmax += sse
	}
	g.runLen = 0
	g.runActive = false
}

// exactEmax finalizes and returns SSE(s, ρ(s, cmin)) over all rows seen.
func (g *greedyState) exactEmax() float64 {
	g.closeRun()
	return g.trueEmax
}

// mergeTop folds the heap's top node N into its predecessor P = N.prev
// (MERGE of Section 6.2.2): P.row becomes P.row ⊕ N.row, N leaves the list
// and the heap, and the keys of P and of N's successor are re-evaluated.
// The caller must have checked that the top key is finite.
func (g *greedyState) mergeTop() {
	n := g.h.peek()
	p := n.prev
	if g.onMerge != nil {
		g.onMerge(n)
	}
	g.totalError += n.key
	g.merges++

	p.row = MergeRows(p.row, n.row)
	p.next = n.next
	if n.next != nil {
		n.next.prev = p
	} else {
		g.tail = p
	}
	g.h.remove(n)

	// Re-key P against its own predecessor and N's successor against the
	// grown P.
	if p.prev != nil && RowsAdjacent(p.prev.row, p.row) {
		p.key = Dissimilarity(p.prev.row, p.row, g.w2)
	} else {
		p.key = Inf
	}
	g.h.fix(p)
	if s := p.next; s != nil {
		if RowsAdjacent(p.row, s.row) {
			s.key = Dissimilarity(p.row, s.row, g.w2)
		} else {
			s.key = Inf
		}
		g.h.fix(s)
	}
}

// hasAdjacentSuccessors reports whether at least delta adjacent tuples
// follow node n in the intermediate relation (the δ read-ahead heuristic).
// delta = DeltaInf always reports false, delta ≤ 0 always true.
func (g *greedyState) hasAdjacentSuccessors(n *node, delta int) bool {
	if delta <= 0 {
		return true
	}
	if delta == DeltaInf {
		return false
	}
	count := 0
	for m := n.next; m != nil && m.key < Inf; m = m.next {
		count++
		if count >= delta {
			return true
		}
	}
	return false
}

// result walks the linked list in stream order and packages the outcome.
func (g *greedyState) result(meta *temporal.Sequence) *GreedyResult {
	var head *node
	for n := g.tail; n != nil; n = n.prev {
		head = n
	}
	var rows []temporal.SeqRow
	for n := head; n != nil; n = n.next {
		rows = append(rows, n.row)
	}
	out := meta.WithRows(rows)
	readAhead := g.maxHeap - len(rows)
	if readAhead < 0 {
		readAhead = 0
	}
	return &GreedyResult{
		Sequence:  out,
		C:         len(rows),
		Error:     g.totalError,
		Merges:    g.merges,
		MaxHeap:   g.maxHeap,
		ReadAhead: readAhead,
	}
}

// GMS evaluates size-bounded PTA with the plain greedy merging strategy of
// Section 6.1: the whole relation is loaded, then the most similar adjacent
// pair is merged until c tuples remain. It needs O(n) space and O(n log n)
// time and its error is within O(log n) of the optimum (Theorem 1).
func GMS(seq *temporal.Sequence, c int, opts Options) (*GreedyResult, error) {
	if err := validateSizeBound(seq, c); err != nil {
		return nil, err
	}
	g, err := newGreedyState(seq.P(), opts)
	if err != nil {
		return nil, err
	}
	if err := opts.canceled(); err != nil {
		return nil, err
	}
	for _, row := range seq.Rows {
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.insert(row.CloneAggs())
	}
	for g.h.len() > c {
		n := g.h.peek()
		if n.key == Inf {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.mergeTop()
	}
	return g.result(seq), nil
}

// GMSError evaluates error-bounded PTA with the plain greedy merging
// strategy: merge most-similar pairs while the accumulated error stays
// within eps·SSEmax.
func GMSError(seq *temporal.Sequence, eps float64, opts Options) (*GreedyResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	g, err := newGreedyState(seq.P(), opts)
	if err != nil {
		return nil, err
	}
	if err := opts.canceled(); err != nil {
		return nil, err
	}
	for _, row := range seq.Rows {
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.insert(row.CloneAggs())
	}
	bound := eps * g.exactEmax()
	for {
		n := g.h.peek()
		if n == nil || n.key == Inf || g.totalError+n.key > bound {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.mergeTop()
	}
	return g.result(seq), nil
}

// GPTAc evaluates size-bounded PTA greedily over a stream (algorithm gPTAc,
// Fig. 11): rows are merged as they arrive whenever Proposition 3 proves the
// merge equal to GMS's choice, or when at least delta adjacent successors
// follow the candidate (the read-ahead heuristic). With delta = DeltaInf the
// output is identical to GMS (Theorem 2). It runs in O(n log(c+β)) time and
// O(c+β) space, where β is the read-ahead overshoot.
func GPTAc(src Stream, c, delta int, opts Options) (*GreedyResult, error) {
	meta := src.Sequence()
	if c < 1 {
		return nil, fmt.Errorf("core: size bound %d, want ≥ 1", c)
	}
	g, err := newGreedyState(meta.P(), opts)
	if err != nil {
		return nil, err
	}
	if err := opts.canceled(); err != nil {
		return nil, err
	}
	for {
		row, ok := src.Next()
		if !ok {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.insert(row.CloneAggs())
		for g.h.len() > c {
			n := g.h.peek()
			if n.key == Inf {
				break
			}
			if n.id < g.lastGap && g.bg >= c {
				g.bg--
				g.mergeTop()
			} else if n.id > g.lastGap && g.hasAdjacentSuccessors(n, delta) {
				g.ag--
				g.mergeTop()
			} else {
				break // wait for more tuples
			}
		}
	}
	// The stream is exhausted: finish like GMS.
	for g.h.len() > c {
		n := g.h.peek()
		if n.key == Inf {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.mergeTop()
	}
	return g.result(meta), nil
}

// Estimate carries the a-priori guesses gPTAε needs before the stream ends:
// the ITA result size n̂ and the maximal error Êmax. Underestimating Êmax
// only delays merging (a larger heap); overestimating it may give a result
// different from GMS (Theorem 3).
type Estimate struct {
	N    int
	EMax float64
}

// ExactEstimate computes the exact n and SSEmax of an in-memory sequence —
// the experiments' setting ("instead of estimating ... we use the correct
// values", Section 7.2.2).
func ExactEstimate(seq *temporal.Sequence, opts Options) (Estimate, error) {
	kn, err := NewKernel(seq, opts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{N: seq.Len(), EMax: kn.MaxError()}, nil
}

// SampleEstimate estimates n̂ and Êmax for the ITA result of a relation of
// inputSize tuples from a fraction of its rows: n̂ = 2·|r|−1 (the worst-case
// ITA size, Section 6.3) and Êmax scaled up from the sample's maximal error.
func SampleEstimate(sample *temporal.Sequence, inputSize int, fraction float64, opts Options) (Estimate, error) {
	if fraction <= 0 || fraction > 1 {
		return Estimate{}, fmt.Errorf("core: sample fraction %v outside (0, 1]", fraction)
	}
	kn, err := NewKernel(sample, opts)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		N:    2*inputSize - 1,
		EMax: kn.MaxError() / fraction,
	}, nil
}

// RandomSampleEstimate estimates n̂ and Êmax from a uniform random sample of
// the sequence's rows instead of a prefix. The paper's future work
// (Section 8) notes that "novel ways to sample temporal data have to be
// developed in order to obtain good estimates"; random row sampling is the
// obvious first step and is markedly less biased than a prefix sample on
// non-stationary data (salaries with inflation, growing sensor drift, ...),
// because SSEmax integrates squared deviations that late rows may dominate.
//
// Sampled rows are attributed to the maximal adjacent run of the *original*
// sequence they come from (sampling must not invent gaps), the merge-all SSE
// of each run's sample is computed, and the total is scaled by 1/fraction.
func RandomSampleEstimate(seq *temporal.Sequence, fraction float64, seed int64, opts Options) (Estimate, error) {
	if fraction <= 0 || fraction > 1 {
		return Estimate{}, fmt.Errorf("core: sample fraction %v outside (0, 1]", fraction)
	}
	w2, err := opts.weightsSquared(seq.P())
	if err != nil {
		return Estimate{}, err
	}
	n := seq.Len()
	if n == 0 {
		return Estimate{N: 0}, nil
	}
	k := max(2, int(float64(n)*fraction))
	k = min(k, n)
	rng := rand.New(rand.NewSource(seed))
	picked := rng.Perm(n)[:k]
	sort.Ints(picked)

	p := seq.P()
	var (
		total  float64
		runLen float64
		sv     = make([]float64, p)
		ssv    = make([]float64, p)
	)
	flush := func() {
		if runLen == 0 {
			return
		}
		for d := 0; d < p; d++ {
			if e := ssv[d] - sv[d]*sv[d]/runLen; e > 0 {
				total += w2[d] * e
			}
			sv[d], ssv[d] = 0, 0
		}
		runLen = 0
	}
	prevIdx := -2
	for _, idx := range picked {
		// A new original run starts whenever any boundary between the
		// previously sampled row and this one is non-adjacent.
		for b := max(prevIdx, 0); b < idx; b++ {
			if !seq.Adjacent(b) {
				flush()
				break
			}
		}
		row := seq.Rows[idx]
		l := float64(row.T.Len())
		runLen += l
		for d := 0; d < p; d++ {
			sv[d] += l * row.Aggs[d]
			ssv[d] += l * row.Aggs[d] * row.Aggs[d]
		}
		prevIdx = idx
	}
	flush()
	return Estimate{
		N:    n,
		EMax: total / (float64(k) / float64(n)),
	}, nil
}

// GPTAe evaluates error-bounded PTA greedily over a stream (algorithm
// gPTAε, Fig. 13). While streaming it merges pairs whose error stays below
// the expected per-merge budget eps·Êmax/n̂ (Proposition 4); once the stream
// ends, the exact SSEmax accumulated during the scan takes over and merging
// continues while the total error fits eps·SSEmax.
func GPTAe(src Stream, eps float64, delta int, est Estimate, opts Options) (*GreedyResult, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("core: error bound %v outside [0, 1]", eps)
	}
	if est.N < 1 {
		return nil, fmt.Errorf("core: estimated size %d, want ≥ 1", est.N)
	}
	meta := src.Sequence()
	g, err := newGreedyState(meta.P(), opts)
	if err != nil {
		return nil, err
	}
	if err := opts.canceled(); err != nil {
		return nil, err
	}
	perMerge := eps * est.EMax / float64(est.N)
	for {
		row, ok := src.Next()
		if !ok {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.insert(row.CloneAggs())
		for {
			n := g.h.peek()
			if n.key > perMerge { // Inf included
				break
			}
			if n.id < g.lastGap {
				g.bg--
				g.mergeTop()
			} else if n.id > g.lastGap && g.hasAdjacentSuccessors(n, delta) {
				g.ag--
				g.mergeTop()
			} else {
				break // wait for more tuples
			}
		}
	}
	// Final phase with the exact maximal error.
	emax := g.exactEmax()
	bound := eps * emax
	for {
		n := g.h.peek()
		if n == nil || n.key == Inf || g.totalError+n.key > bound {
			break
		}
		if err := g.checkCancel(); err != nil {
			return nil, err
		}
		g.mergeTop()
	}
	return g.result(meta), nil
}

func validateSizeBound(seq *temporal.Sequence, c int) error {
	if seq.Len() == 0 {
		if c != 0 {
			return fmt.Errorf("core: size bound %d for an empty relation", c)
		}
		return nil
	}
	if c < 1 {
		return fmt.Errorf("core: size bound %d, want ≥ 1", c)
	}
	return nil
}

// sortRowsCanonical is used by tests to compare hand-built sequences; the
// greedy algorithms themselves preserve stream order.
func sortRowsCanonical(seq *temporal.Sequence) {
	sort.SliceStable(seq.Rows, func(i, j int) bool {
		a, b := seq.Rows[i], seq.Rows[j]
		if a.Group != b.Group {
			return temporal.CompareDatums(seq.Groups.Values(a.Group), seq.Groups.Values(b.Group)) < 0
		}
		return a.T.Compare(b.T) < 0
	})
}
