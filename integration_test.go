// Integration tests across module boundaries: relation → ITA (streaming and
// batch) → exact and greedy PTA → CSV persistence, on generated workloads.
package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/temporal"
)

// TestPipelineStreamingGreedyMatchesBatch wires a real ita.Iterator into
// gPTAc (the paper's integrated evaluation) and cross-checks it against the
// batch path: ITA materialized first, then reduced.
func TestPipelineStreamingGreedyMatchesBatch(t *testing.T) {
	rel, err := dataset.Incumbents(dataset.IncumbentsConfig{
		Records: 4000, Depts: 4, Projs: 3, Horizon: 120, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ita.Query{
		GroupBy: []string{"Dept", "Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}, {Func: ita.Count}},
	}
	batchSeq, err := ita.Eval(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	c := max(batchSeq.CMin(), batchSeq.Len()/10)

	it, err := ita.NewIterator(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := core.GPTAc(it, c, core.DeltaInf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.GPTAc(core.NewSliceStream(batchSeq), c, core.DeltaInf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Sequence.Equal(batch.Sequence, 1e-9) {
		t.Error("streaming and batch greedy results differ")
	}
	if err := streamed.Sequence.Validate(); err != nil {
		t.Errorf("streamed result invalid: %v", err)
	}
	// The reported greedy error must match an independent recomputation.
	sse, err := core.SSEBetween(batchSeq, streamed.Sequence, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sse-streamed.Error) > 1e-6*(1+sse) {
		t.Errorf("reported error %v vs recomputed %v", streamed.Error, sse)
	}
}

// TestPipelineExactBeatsGreedy: on the same workload the DP error lower
// bounds the greedy error, and PTAe(ε) sizes agree with the error curve.
func TestPipelineExactBeatsGreedy(t *testing.T) {
	rel, err := dataset.ETDS(dataset.ETDSConfig{Records: 3000, Horizon: 300, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	q := ita.Query{Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}}}
	seq, err := ita.Eval(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	c := max(seq.CMin(), seq.Len()/8)
	exact, err := core.PTAc(seq, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := core.GMS(seq, c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Error < exact.Error-1e-9*(1+exact.Error) {
		t.Errorf("greedy error %v below the optimum %v", greedy.Error, exact.Error)
	}
	// Theorem 1 sanity on a real workload.
	if exact.Error > 0 {
		ratio := greedy.Error / exact.Error
		if ratio > 10*(1+math.Log(float64(seq.Len()))) {
			t.Errorf("error ratio %v violates the O(log n) envelope", ratio)
		}
	}

	px, err := core.NewKernel(seq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 0.05, 0.001} {
		res, err := core.PTAe(seq, eps, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := eps * px.MaxError()
		if res.Error > bound+1e-9*(1+bound) {
			t.Errorf("ε=%v: error %v exceeds bound %v", eps, res.Error, bound)
		}
	}
}

// TestPipelineCSVRoundTrip persists a generated relation and its PTA result
// and reloads the relation losslessly.
func TestPipelineCSVRoundTrip(t *testing.T) {
	rel, err := dataset.Incumbents(dataset.IncumbentsConfig{
		Records: 500, Depts: 2, Projs: 2, Horizon: 60, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := csvio.StoreRelation(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := csvio.LoadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(back) {
		t.Error("CSV round trip changed the relation")
	}
	seq, err := ita.Eval(back, ita.Query{
		GroupBy: []string{"Dept"},
		Aggs:    []ita.AggSpec{{Func: ita.Sum, Attr: "Salary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.PTAc(seq, max(seq.CMin(), 10), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := csvio.StoreSequence(&buf, res.Sequence); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty sequence CSV")
	}
}

// TestPipelineMultiAggregateWeights: a two-aggregate query with weights
// biases the merging choices exactly as Definition 5 prescribes.
func TestPipelineMultiAggregateWeights(t *testing.T) {
	// Two dimensions: dimension 0 with a step at the midpoint, dimension 1
	// with a step at the quarter point. With all weight on dimension 0 the
	// 2-tuple reduction must split at the midpoint, and vice versa.
	seq := temporal.NewSequence(nil, []string{"a", "b"})
	gid := seq.Groups.Intern(nil)
	for i := 0; i < 16; i++ {
		a, b := 0.0, 0.0
		if i >= 8 {
			a = 10
		}
		if i >= 4 {
			b = 10
		}
		seq.Rows = append(seq.Rows, temporal.SeqRow{
			Group: gid, Aggs: []float64{a, b}, T: temporal.Inst(temporal.Chronon(i))})
	}
	resA, err := core.PTAc(seq, 2, core.Options{Weights: []float64{100, 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Sequence.Rows[0].T.End != 7 {
		t.Errorf("weighting dim a should split at 7|8, got end %d", resA.Sequence.Rows[0].T.End)
	}
	resB, err := core.PTAc(seq, 2, core.Options{Weights: []float64{0.01, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Sequence.Rows[0].T.End != 3 {
		t.Errorf("weighting dim b should split at 3|4, got end %d", resB.Sequence.Rows[0].T.End)
	}
}
