// Benchmarks, one family per table/figure of the paper's evaluation
// (Section 7). They exercise the same code paths as cmd/ptabench at sizes
// that keep a full `go test -bench=. -benchmem` run in the minutes range;
// the ptabench binary reproduces the full-scale figures.
package repro

import (
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ita"
	"repro/internal/sta"
	"repro/internal/temporal"
)

// benchConfig is the quick-scale experiment configuration shared by the
// experiment-level benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 1, Seed: 42, Quick: true}
}

func mustWorkload(b *testing.B, name string) *temporal.Sequence {
	b.Helper()
	ws, err := experiments.Workloads(benchConfig(), name)
	if err != nil {
		b.Fatal(err)
	}
	return ws[0].Seq
}

// --- Table 1: workload construction and ITA evaluation ---

func BenchmarkTab1WorkloadETDSITA(b *testing.B) {
	cfg := dataset.ETDSConfig{Records: 20000, Horizon: 800, Seed: 1}
	rel, err := dataset.ETDS(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := ita.Query{Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ita.Eval(rel, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab1WorkloadGroupedITA(b *testing.B) {
	cfg := dataset.IncumbentsConfig{Records: 20000, Depts: 6, Projs: 4, Horizon: 144, Seed: 2}
	rel, err := dataset.Incumbents(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := ita.Query{GroupBy: []string{"Dept", "Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Salary"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ita.Eval(rel, q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 1: the running example end to end ---

func BenchmarkFig01RunningExample(b *testing.B) {
	rel := dataset.Proj()
	q := ita.Query{GroupBy: []string{"Proj"}, Aggs: []ita.AggSpec{{Func: ita.Avg, Attr: "Sal"}}}
	spans, _ := sta.Spans(1, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Eval(rel, q, spans); err != nil {
			b.Fatal(err)
		}
		seq, err := ita.Eval(rel, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.PTAc(seq, 4, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 2: the approximation zoo on one excerpt ---

func BenchmarkFig02ApproximationZoo(b *testing.B) {
	seq := mustWorkload(b, "T1")
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	vals := series.Dims[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.DWTTopK(vals, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := approx.DFTTopK(vals, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := approx.Chebyshev(vals, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := approx.PAAReconstruct(vals, 10); err != nil {
			b.Fatal(err)
		}
		if _, err := approx.APCA(vals, 10, series.Start); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 4-5: DP matrix filling ---

func BenchmarkFig04Fig05Matrices(b *testing.B) {
	seq := mustWorkload(b, "I1")
	c := max(seq.CMin(), seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Matrices(seq, c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 9: greedy merging strategy ---

func BenchmarkFig09GMS(b *testing.B) {
	seq := mustWorkload(b, "T1")
	c := seq.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GMS(seq, c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 14: error curves ---

func BenchmarkFig14aErrorCurve(b *testing.B) {
	seq := mustWorkload(b, "I1")
	kmax := max(1, seq.Len()/10)
	kmax = max(kmax, seq.CMin())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ErrorCurve(seq, kmax, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14bMultiDimCurve(b *testing.B) {
	seq, err := dataset.Uniform(1, 400, 10, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ErrorCurve(seq, seq.Len(), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 15: head-to-head on T1 ---

func BenchmarkFig15PTAc(b *testing.B) {
	seq := mustWorkload(b, "T1")
	c := max(1, seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PTAc(seq, c, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15GPTAc(b *testing.B) {
	seq := mustWorkload(b, "T1")
	c := max(1, seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GPTAc(core.NewSliceStream(seq), c, core.DeltaInf, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15ATC(b *testing.B) {
	seq := mustWorkload(b, "T1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.ATC(seq, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15APCA(b *testing.B) {
	seq := mustWorkload(b, "T1")
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := max(1, seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.APCA(series.Dims[0], c, series.Start); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15DWT(b *testing.B) {
	seq := mustWorkload(b, "T1")
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := max(1, seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.DWTTopK(series.Dims[0], c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15PAA(b *testing.B) {
	seq := mustWorkload(b, "T1")
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := max(1, seq.Len()/10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.PAA(series.Dims[0], c, series.Start); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 16: error-ratio machinery (SSEBetween dominates) ---

func BenchmarkFig16SSEBetween(b *testing.B) {
	seq := mustWorkload(b, "I1")
	res, err := core.GPTAc(core.NewSliceStream(seq), max(seq.CMin(), seq.Len()/10), 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SSEBetween(seq, res.Sequence, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 17: δ sweep ---

func BenchmarkFig17GPTAcDelta(b *testing.B) {
	seq := mustWorkload(b, "I1")
	c := max(seq.CMin(), seq.Len()/10)
	for _, delta := range []int{0, 1, 2, core.DeltaInf} {
		name := "delta=inf"
		if delta != core.DeltaInf {
			name = string(rune('0'+delta)) + "=delta"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GPTAc(core.NewSliceStream(seq), c, delta, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs. 18-19: DP vs PTAc ---

func BenchmarkFig18aDPBasicNoGaps(b *testing.B) {
	seq, err := dataset.Uniform(1, 1200, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DPBasic(seq, 100, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18aPTAcNoGaps(b *testing.B) {
	seq, err := dataset.Uniform(1, 1200, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PTAc(seq, 100, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18bDPBasicWithGaps(b *testing.B) {
	seq, err := dataset.Uniform(100, 12, 10, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DPBasic(seq, 200, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18bPTAcWithGaps(b *testing.B) {
	seq, err := dataset.Uniform(100, 12, 10, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PTAc(seq, 200, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19OutputSizeSweep(b *testing.B) {
	seq, err := dataset.Uniform(100, 10, 10, 12)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []int{100, 400, 800} {
		b.Run(string(rune('0'+c/100))+"00", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PTAc(seq, c, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 20: heap growth ---

func BenchmarkFig20aGPTAcHeap(b *testing.B) {
	seq, err := dataset.Uniform(1, 20000, 1, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.GPTAc(core.NewSliceStream(seq), 100, 1, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxHeap > 200 {
			b.Fatalf("heap grew to %d", res.MaxHeap)
		}
	}
}

func BenchmarkFig20bGPTAeHeap(b *testing.B) {
	seq, err := dataset.Uniform(1, 20000, 1, 14)
	if err != nil {
		b.Fatal(err)
	}
	est, err := core.ExactEstimate(seq, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GPTAe(core.NewSliceStream(seq), 0.1, 1, est, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 21: scalability of the greedy algorithms ---

func BenchmarkFig21GPTAc(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	c := seq.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GPTAc(core.NewSliceStream(seq), c, 1, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21GPTAe(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	est, err := core.ExactEstimate(seq, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GPTAe(core.NewSliceStream(seq), 0.65, 1, est, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21PAA(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := seq.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.PAA(series.Dims[0], c, series.Start); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21APCA(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := seq.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.APCA(series.Dims[0], c, series.Start); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21DWT(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	series, err := approx.FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	c := seq.Len() / 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.DWTTopK(series.Dims[0], c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21ATC(b *testing.B) {
	seq, err := dataset.Uniform(1, 50000, 1, 15)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.ATC(seq, 0.01, nil); err != nil {
			b.Fatal(err)
		}
	}
}
