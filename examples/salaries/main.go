// Salaries demonstrates PTA on an ETDS-style payroll workload (the paper's
// E-queries): a company-wide salary history is aggregated per month with
// ITA, then compressed through the pta facade with exact, size-bounded PTA
// and with the error-bounded variant, showing the size/error trade-off the
// operator exposes to applications such as dashboards.
//
// Run with: go run ./examples/salaries
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

func main() {
	cfg := dataset.ETDSConfig{Records: 20000, Horizon: 900, Seed: 11}
	employees, err := dataset.ETDS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d employment records over %d months\n", employees.Len(), cfg.Horizon)

	// Company-wide average and headcount per month.
	query := ita.Query{
		Aggs: []ita.AggSpec{
			{Func: ita.Avg, Attr: "Salary", As: "avg_salary"},
			{Func: ita.Count, As: "headcount"},
		},
	}
	monthly, err := ita.Eval(employees, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ITA result: %d rows (one per month with any change)\n", monthly.Len())

	// A dashboard wants at most 12 segments. Weights: salary differences
	// matter much more than headcount differences per Definition 5.
	opts := pta.Options{Weights: []float64{1, 25}}
	res, err := pta.Compress(monthly, "ptac", pta.Size(12), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsize-bounded PTA, c = 12 (error %.4g):\n", res.Error)
	fmt.Print(res.Series)

	// Alternatively: keep whatever size is needed for at most 0.5% of the
	// maximal merging error.
	resE, err := pta.Compress(monthly, "ptae", pta.ErrorBound(0.005), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerror-bounded PTA, ε = 0.5%% → %d rows (error %.4g)\n", resE.C, resE.Error)

	// How good is the cheap greedy approximation at the same size? Same
	// budget, same options — only the strategy name changes.
	greedy, err := pta.Compress(monthly, "gptac", pta.Size(12), pta.Options{
		Weights:   opts.Weights,
		ReadAhead: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy gptac at c = 12: error %.4g (ratio %.3f vs optimum), max heap %d of %d rows\n",
		greedy.Error, greedy.Error/res.Error, greedy.Stats.MaxHeap, monthly.Len())
}
