// Salaries demonstrates PTA on an ETDS-style payroll workload (the paper's
// E-queries): a company-wide salary history is aggregated per month with
// ITA, then compressed through the pta facade with exact, size-bounded PTA
// and with the error-bounded variant, showing the size/error trade-off the
// operator exposes to applications such as dashboards.
//
// Run with: go run ./examples/salaries
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	cfg := dataset.ETDSConfig{Records: 20000, Horizon: 900, Seed: 11}
	employees, err := dataset.ETDS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d employment records over %d months\n", employees.Len(), cfg.Horizon)

	// Company-wide average and headcount per month.
	query := ita.Query{
		Aggs: []ita.AggSpec{
			{Func: ita.Avg, Attr: "Salary", As: "avg_salary"},
			{Func: ita.Count, As: "headcount"},
		},
	}
	monthly, err := ita.Eval(employees, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ITA result: %d rows (one per month with any change)\n", monthly.Len())

	// The operator's session: weights are an engine-level default set once
	// with a functional option — salary differences matter much more than
	// headcount differences per Definition 5.
	engine, err := pta.New(
		pta.WithWeights([]float64{1, 25}),
		pta.WithReadAhead(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Three views of the same series, served in one CompressMany call: the
	// exact ptac/ptae plans share a single filling of the DP matrices (one
	// pass, three results), the greedy plan runs alongside for contrast.
	results, err := engine.CompressMany(ctx, monthly, []pta.Plan{
		{Strategy: "ptac", Budget: pta.Size(12)},
		{Strategy: "ptae", Budget: pta.ErrorBound(0.005)},
		{Strategy: "gptac", Budget: pta.Size(12)},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, resE, greedy := results[0], results[1], results[2]

	fmt.Printf("\nsize-bounded PTA, c = 12 (error %.4g):\n", res.Error)
	fmt.Print(res.Series)
	fmt.Printf("\nerror-bounded PTA, ε = 0.5%% → %d rows (error %.4g)\n", resE.C, resE.Error)
	fmt.Printf("\ngreedy gptac at c = 12: error %.4g (ratio %.3f vs optimum), max heap %d of %d rows\n",
		greedy.Error, greedy.Error/res.Error, greedy.Stats.MaxHeap, monthly.Len())
}
