// Serveclient demonstrates the HTTP serving layer end to end, in one
// process: it boots ptaserve's server (internal/serve) on a loopback port,
// then talks to it exactly like a remote client would — list the strategy
// registry, compress the paper's running example under several budgets, and
// watch the shared matrix cache turn repeated budgets of the hot series
// into cache hits on /v1/stats.
//
// Run with: go run ./examples/serveclient
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/serve"
	"repro/pta"
)

// request is the /v1/compress body: the running example (Fig. 1) as JSON
// rows plus one plan. A real client builds this from its own data; the wire
// format is plain JSON, no client library needed.
func request(strategy, budget string) []byte {
	body := map[string]any{
		"series": map[string]any{
			"group_attrs": []map[string]string{{"name": "Proj", "kind": "string"}},
			"agg_names":   []string{"AvgSal"},
			"rows": []map[string]any{
				{"group": []any{"A"}, "aggs": []float64{800}, "start": 1, "end": 2},
				{"group": []any{"A"}, "aggs": []float64{600}, "start": 3, "end": 3},
				{"group": []any{"A"}, "aggs": []float64{500}, "start": 4, "end": 4},
				{"group": []any{"A"}, "aggs": []float64{350}, "start": 5, "end": 6},
				{"group": []any{"A"}, "aggs": []float64{300}, "start": 7, "end": 7},
				{"group": []any{"B"}, "aggs": []float64{500}, "start": 4, "end": 5},
				{"group": []any{"B"}, "aggs": []float64{500}, "start": 7, "end": 8},
			},
		},
		"plan": map[string]any{"strategy": strategy, "budget": budget},
	}
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	return raw
}

func main() {
	// Boot the server like cmd/ptaserve does: one engine per deployment,
	// handlers share its scratch pool and the LRU matrix cache.
	engine, err := pta.New(pta.WithParallelism(2), pta.WithScratchPool(pta.NewScratchPool()))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Engine: engine, CacheEntries: 16})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("server up at", base)

	// 1. The registry, as a client sees it.
	var strategies struct {
		Strategies []struct {
			Name       string `json:"name"`
			CacheClass string `json:"matrix_cache_class"`
		} `json:"strategies"`
	}
	getJSON(base+"/v1/strategies", &strategies)
	cacheable := 0
	for _, s := range strategies.Strategies {
		if s.CacheClass != "" {
			cacheable++
		}
	}
	fmt.Printf("registry: %d strategies, %d matrix-cacheable\n",
		len(strategies.Strategies), cacheable)

	// 2. Several budgets of one hot series. The first request fills the DP
	// matrices; every later one — including the error-bounded ptae plan —
	// backtracks over the cached matrices.
	for _, plan := range [][2]string{
		{"ptac", "c=4"},
		{"ptac", "c=4"},
		{"ptac", "c=3"},
		{"ptae", "eps=0.2"},
		{"gms", "c=4"},
	} {
		var res struct {
			C     int     `json:"c"`
			Error float64 `json:"error"`
			Cache string  `json:"cache"`
		}
		resp, err := http.Post(base+"/v1/compress", "application/json",
			bytes.NewReader(request(plan[0], plan[1])))
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%-5s %-8s -> c=%d error=%.2f cache=%s\n",
			plan[0], plan[1], res.C, res.Error, res.Cache)
	}

	// 3. An infeasible budget comes back as a typed 422, with the smallest
	// reachable size attached.
	resp, err := http.Post(base+"/v1/compress", "application/json",
		bytes.NewReader(request("ptac", "c=2")))
	if err != nil {
		log.Fatal(err)
	}
	var failure struct {
		Error struct {
			Code string `json:"code"`
			CMin int    `json:"cmin"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&failure); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("c=2 -> %d %s (cmin=%d)\n", resp.StatusCode, failure.Error.Code, failure.Error.CMin)

	// 4. The cache counters on /v1/stats.
	var stats struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("cache: %d hits, %d misses\n", stats.Cache.Hits, stats.Cache.Misses)

	// 5. Graceful shutdown, like SIGTERM on the daemon.
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}

// getJSON fetches one JSON endpoint into out.
func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
