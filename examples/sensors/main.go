// Sensors compresses a multi-station wind-speed feed (the paper's T3
// workload) for visualization. The 12-dimensional, gap-ridden feed goes
// through the streaming PTA strategy directly; on a single station's
// gap-free stretch the strategy registry makes the classic baselines (PAA,
// APCA, PLA) directly comparable under the same budget — switching methods
// is just a name change.
//
// Run with: go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/approx"
	"repro/internal/dataset"
	"repro/internal/temporal"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	// Twelve correlated stations, 4 000 samples, 40 transmission outages.
	wind, err := dataset.Wind(4000, 12, 40, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wind feed: %d samples × %d stations, cmin = %d\n",
		wind.Len(), wind.P(), wind.CMin())

	// One engine serves every compression of the example; the streaming
	// default δ = 1 is an engine-level option.
	engine, err := pta.New(pta.WithReadAhead(1))
	if err != nil {
		log.Fatal(err)
	}

	// A chart should show at most 120 segments across all stations' shared
	// timeline. PTA handles the 12 dimensions and the outage gaps directly.
	const budget = 120
	res, err := engine.Compress(ctx, wind, pta.Plan{Strategy: "gptac", Budget: pta.Size(budget)})
	if err != nil {
		log.Fatal(err)
	}
	emax, err := pta.MaxError(wind, pta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gptac: %d → %d segments, error %.4g (%.2f%% of SSEmax), heap ≤ %d\n",
		wind.Len(), res.C, res.Error, 100*res.Error/emax, res.Stats.MaxHeap)

	// The classic baselines only handle one gap-free dimension: extract
	// station01's longest gap-free stretch and compare every applicable
	// registry strategy at the same budget — one CompressMany call, one
	// plan per strategy.
	single := singleStationRun(wind, 0)
	c := 40
	fmt.Printf("\nstation01, %d gap-free rows, budget %d segments:\n", single.Len(), c)
	strategies := []string{"ptac", "gms", "paa", "apca", "pla"}
	plans := make([]pta.Plan, len(strategies))
	for i, strategy := range strategies {
		plans[i] = pta.Plan{Strategy: strategy, Budget: pta.Size(c)}
	}
	compared, err := engine.CompressMany(ctx, single, plans)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range compared {
		fmt.Printf("  %-6s error %.4g (%d segments)\n", r.Strategy, r.Error, r.C)
	}

	// SAX gives a symbolic sketch of the same stretch for indexing.
	series, err := approx.FromSequence(single)
	if err != nil {
		log.Fatal(err)
	}
	word, err := approx.SAX(series.Dims[0], 20, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSAX(20, 6) sketch of station01: %s\n", word)
}

// singleStationRun projects dimension d of the feed and keeps the longest
// gap-free stretch.
func singleStationRun(seq *pta.Series, d int) *pta.Series {
	bestLo, bestHi, lo := 0, 0, 0
	for i := 0; i <= seq.Len(); i++ {
		if i == seq.Len() || (i > 0 && !seq.Adjacent(i-1)) {
			if i-lo > bestHi-bestLo {
				bestLo, bestHi = lo, i
			}
			lo = i
		}
	}
	out := pta.NewSeries(nil, []string{seq.AggNames[d]})
	gid := out.Groups.Intern(nil)
	for _, r := range seq.Rows[bestLo:bestHi] {
		out.Rows = append(out.Rows, temporal.SeqRow{
			Group: gid,
			Aggs:  []float64{r.Aggs[d]},
			T:     r.T,
		})
	}
	return out
}
