// Sensors compresses a multi-station wind-speed feed (the paper's T3
// workload) for visualization, comparing PTA's data-adaptive segments with
// the classic fixed-grid and wavelet-based alternatives on a single station,
// and demonstrating the multi-dimensional reduction with per-dimension
// weights that the time-series baselines cannot express.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/temporal"
)

func main() {
	// Twelve correlated stations, 4 000 samples, 40 transmission outages.
	wind, err := dataset.Wind(4000, 12, 40, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wind feed: %d samples × %d stations, cmin = %d\n",
		wind.Len(), wind.P(), wind.CMin())

	// A chart should show at most 120 segments across all stations' shared
	// timeline. PTA handles the 12 dimensions and the outage gaps directly.
	const budget = 120
	res, err := core.GPTAc(core.NewSliceStream(wind), budget, 1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	px, err := core.NewPrefix(wind, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gPTAc: %d → %d segments, error %.4g (%.2f%% of SSEmax), heap ≤ %d\n",
		wind.Len(), res.C, res.Error, 100*res.Error/px.MaxError(), res.MaxHeap)

	// The classic baselines only handle one gap-free dimension: extract
	// station01's longest gap-free stretch and compare at equal budgets.
	single := singleStationRun(wind, 0)
	series, err := approx.FromSequence(single)
	if err != nil {
		log.Fatal(err)
	}
	vals := series.Dims[0]
	c := 40
	fmt.Printf("\nstation01, %d gap-free samples, budget %d segments:\n", len(vals), c)

	opt, err := core.PTAc(single, c, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-6s error %.4g\n", "PTA", opt.Error)

	paa, err := approx.PAAReconstruct(vals, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-6s error %.4g\n", "PAA", pointSSE(vals, paa))

	apca, err := approx.APCA(vals, c, series.Start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-6s error %.4g\n", "APCA", series.SSESegments(apca, nil))

	dwt, _, err := approx.DWTWithSegments(vals, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-6s error %.4g\n", "DWT", pointSSE(vals, dwt))

	// SAX gives a symbolic sketch of the same stretch for indexing.
	word, err := approx.SAX(vals, 20, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSAX(20, 6) sketch of station01: %s\n", word)
}

// singleStationRun projects dimension d of the feed and keeps the longest
// gap-free stretch.
func singleStationRun(seq *temporal.Sequence, d int) *temporal.Sequence {
	bestLo, bestHi, lo := 0, 0, 0
	for i := 0; i <= seq.Len(); i++ {
		if i == seq.Len() || (i > 0 && !seq.Adjacent(i-1)) {
			if i-lo > bestHi-bestLo {
				bestLo, bestHi = lo, i
			}
			lo = i
		}
	}
	out := temporal.NewSequence(nil, []string{seq.AggNames[d]})
	gid := out.Groups.Intern(nil)
	for _, r := range seq.Rows[bestLo:bestHi] {
		out.Rows = append(out.Rows, temporal.SeqRow{
			Group: gid,
			Aggs:  []float64{r.Aggs[d]},
			T:     r.T,
		})
	}
	return out
}

func pointSSE(vals, rec []float64) float64 {
	var s float64
	for i, v := range vals {
		d := v - rec[i]
		s += d * d
	}
	return s
}
