// Streaming shows the headline property of the greedy evaluators: merging
// begins while ITA rows are still being produced, so an unbounded feed can
// be summarized in O(c+β) memory instead of materializing the full ITA
// result first (Section 6.2).
//
// The example wires an ita.Iterator — which satisfies pta.Stream — straight
// into Engine.CompressStream and reports how small the heap stayed relative
// to the stream, for several read-ahead settings δ. The result rows are
// pushed into a pta.Sink, the serving-side half of the streaming API.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	// A long sensor-style relation: per-device measurement records.
	cfg := dataset.IncumbentsConfig{Records: 50000, Depts: 4, Projs: 4, Horizon: 2000, Seed: 5}
	feed, err := dataset.Incumbents(cfg)
	if err != nil {
		log.Fatal(err)
	}
	query := ita.Query{
		GroupBy: []string{"Dept", "Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Salary", As: "load"}},
	}

	// Count the ITA rows once so the compression is reportable (a real
	// deployment would not do this pass).
	full, err := ita.Eval(feed, query)
	if err != nil {
		log.Fatal(err)
	}
	n := full.Len()
	const c = 64
	fmt.Printf("stream: %d input records → %d ITA rows; target size %d\n", feed.Len(), n, c)

	engine, err := pta.New()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsize-bounded gptac, merging as rows arrive, pushed into a sink:")
	for _, delta := range []int{pta.ReadAheadEager, 1, 2, pta.ReadAheadInf} {
		it, err := ita.NewIterator(feed, query)
		if err != nil {
			log.Fatal(err)
		}
		// The sink stands in for a downstream consumer (a chart, a cache,
		// a network writer): it receives every result row in order.
		pushed := 0
		sink := pta.SinkFunc(func(pta.Row) error {
			pushed++
			return nil
		})
		res, err := engine.CompressStream(ctx, it, pta.Plan{
			Strategy: "gptac",
			Budget:   pta.Size(c),
			Options:  &pta.Options{ReadAhead: delta},
		}, sink)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  δ=%-4s sink got %3d rows, error %.4g, max heap %6d (%.1f%% of stream)\n",
			deltaName(delta), pushed, res.Error, res.Stats.MaxHeap,
			100*float64(res.Stats.MaxHeap)/float64(n))
	}

	// Error-bounded variant: the estimates n̂ = 2|r|−1 and Êmax from a 10%
	// sample, per Section 6.3.
	sampleRel := feed.Clone()
	sample, err := ita.Eval(sampleRel, query)
	if err != nil {
		log.Fatal(err)
	}
	sample.Rows = sample.Rows[:len(sample.Rows)/10]
	est, err := pta.SampleEstimate(sample, feed.Len(), 0.1, pta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerror-bounded gptae (ε = 0.05, estimates n̂=%d, Êmax=%.3g):\n", est.N, est.EMax)

	// A serving deployment installs the estimator once (WithEstimator);
	// every error-bounded stream plan then finds its (N̂, Êmax) without
	// per-call wiring.
	estEngine, err := pta.New(pta.WithEstimator(
		func(context.Context, *pta.Series) (pta.Estimate, error) { return est, nil },
	))
	if err != nil {
		log.Fatal(err)
	}
	for _, delta := range []int{1, pta.ReadAheadInf} {
		it, err := ita.NewIterator(feed, query)
		if err != nil {
			log.Fatal(err)
		}
		res, err := estEngine.CompressStream(ctx, it, pta.Plan{
			Strategy: "gptae",
			Budget:   pta.ErrorBound(0.05),
			Options:  &pta.Options{ReadAhead: delta},
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  δ=%-4s result %3d rows, error %.4g, max heap %6d\n",
			deltaName(delta), res.C, res.Error, res.Stats.MaxHeap)
	}
}

func deltaName(d int) string {
	switch d {
	case pta.ReadAheadInf:
		return "∞"
	case pta.ReadAheadEager:
		return "0"
	}
	return fmt.Sprintf("%d", d)
}
