// Mdta demonstrates the multi-dimensional temporal aggregation front door:
// MDTA (Böhlen, Gamper, Jensen; EDBT 2006 — the paper's reference [4])
// aggregates a temporal relation over *user-defined* groups — arbitrary
// value predicates paired with arbitrary reporting intervals — and
// pta.SeriesFromMDTA validates the result as a sequential relation ready
// for PTA compression. The example reports per-project headcount and
// average salary over business quarters of differing lengths (something
// neither ITA's instants nor STA's regular spans can express), then
// compresses the quarterly series to a budget with the exact DP.
//
// Run with: go run ./examples/mdta
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/pta"
)

func main() {
	ctx := context.Background()

	// An ETDS-style payroll relation: employees with salaries on projects.
	rel, err := dataset.ETDS(dataset.ETDSConfig{Records: 6000, Horizon: 480, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d employment records over 480 months\n", rel.Len())

	// MDTA query: average salary and headcount, grouped by department.
	query := pta.MDTAQuery{
		GroupBy: []string{"Dept"},
		Aggs: []ita.AggSpec{
			{Func: ita.Avg, Attr: "Salary", As: "avg_salary"},
			{Func: ita.Count, As: "headcount"},
		},
	}

	// User-defined groups: one spec per (department, fiscal period), with
	// irregular period lengths — a 5-month ramp-up, then quarters, then a
	// year-end crunch — the "more flexibility for the specification of
	// aggregation groups" MDTA exists for (Section 2.1 of the paper).
	combos, err := pta.MDTAValueCombos(rel, query.GroupBy)
	if err != nil {
		log.Fatal(err)
	}
	var periods []pta.Interval
	for start := pta.Chronon(0); start < 480; {
		length := pta.Chronon(3)
		switch {
		case start == 0:
			length = 5 // ramp-up period
		case (start-5)%12 == 9:
			length = 2 // year-end crunch
		}
		periods = append(periods, pta.Interval{Start: start, End: start + length - 1})
		start += length
	}
	specs := pta.MDTASpanSpecs(combos, periods)
	fmt.Printf("mdta: %d departments × %d fiscal periods = %d group specs\n",
		len(combos), len(periods), len(specs))

	series, err := pta.SeriesFromMDTA(rel, query, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mdta result: %d rows, cmin %d\n", series.Len(), series.CMin())

	// The MDTA result is an ordinary Series: compress it like any other.
	engine, err := pta.New(pta.WithWeights([]float64{1, 50}))
	if err != nil {
		log.Fatal(err)
	}
	for _, budget := range []pta.Budget{pta.Size(24), pta.ErrorBound(0.02)} {
		res, err := engine.Compress(ctx, series, pta.Plan{Strategy: "ptac", Budget: budget})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compressed under %v: %d rows, introduced SSE %.1f\n", budget, res.C, res.Error)
	}

	// A spec with nil values aggregates across every department at once —
	// the case neither ITA nor STA can phrase (Section 2.1).
	var global []pta.MDTAGroupSpec
	for _, p := range periods {
		global = append(global, pta.MDTAGroupSpec{Vals: nil, T: p})
	}
	overall, err := pta.SeriesFromMDTA(rel, pta.MDTAQuery{Aggs: query.Aggs}, global)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Compress(ctx, overall, pta.Plan{Strategy: "ptae", Budget: pta.ErrorBound(0.05)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("company-wide series: %d fiscal periods → %d rows within 5%% of SSEmax\n",
		overall.Len(), res.C)
}
