// Incremental demonstrates the maintenance pipeline of a live temporal
// warehouse: tuples arrive (and are retracted) one at a time, an SB-tree
// (Yang & Widom, reference [30] of the paper) keeps the temporal aggregate
// continuously up to date, and on demand the current aggregate is pulled
// out and compressed through the pta facade for display — no batch
// recomputation anywhere.
//
// Run with: go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/sbtree"
	"repro/internal/temporal"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	tree, err := sbtree.New(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	// One engine outlives every snapshot below: its scratch buffers are
	// reused across the repeated display compressions of the live store.
	engine, err := pta.New()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Phase 1: 5 000 contract records stream in.
	type rec struct {
		iv  temporal.Interval
		val float64
	}
	var live []rec
	for i := 0; i < 5000; i++ {
		start := temporal.Chronon(rng.Intn(1000))
		r := rec{
			iv:  temporal.Interval{Start: start, End: start + temporal.Chronon(1+rng.Intn(90))},
			val: 1000 + rng.Float64()*9000,
		}
		live = append(live, r)
		if err := tree.Insert(r.iv, []float64{r.val}); err != nil {
			log.Fatal(err)
		}
	}
	count, sums := tree.At(500)
	fmt.Printf("after %d inserts: %d endpoints; at t=500: %d active, avg value %.2f\n",
		len(live), tree.Len(), int(count), sums[0]/count)

	// Snapshot the full aggregate and compress it for a 24-segment chart.
	cols := []sbtree.Column{{Fn: "avg", Attr: 0, Name: "avg_value"}}
	seq, err := tree.Sequence(cols)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Compress(ctx, seq, pta.Plan{Strategy: "ptac", Budget: pta.Size(24)})
	if err != nil {
		log.Fatal(err)
	}
	emax, err := pta.MaxError(seq, pta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate: %d rows → PTA 24 rows (%.3f%% of max error)\n",
		seq.Len(), 100*res.Error/emax)

	// Phase 2: 1 500 contracts are retracted (amendments), the aggregate
	// stays consistent without recomputation.
	for i := 0; i < 1500; i++ {
		r := live[len(live)-1]
		live = live[:len(live)-1]
		if err := tree.Delete(r.iv, []float64{r.val}); err != nil {
			log.Fatal(err)
		}
	}
	seq2, err := tree.Sequence(cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 1500 retractions: aggregate has %d rows\n", seq2.Len())

	// Cross-check: rebuilding from scratch gives the identical aggregate.
	fresh, _ := sbtree.New(1, 7)
	for _, r := range live {
		if err := fresh.Insert(r.iv, []float64{r.val}); err != nil {
			log.Fatal(err)
		}
	}
	seq3, err := fresh.Sequence(cols)
	if err != nil {
		log.Fatal(err)
	}
	if seq2.Equal(seq3, 1e-6) {
		fmt.Println("incrementally maintained aggregate matches a fresh rebuild ✓")
	} else {
		fmt.Println("MISMATCH between incremental and rebuilt aggregates")
	}

	// Final display snapshot: the in-memory error-bounded strategy computes
	// its own exact (N, EMax) estimate.
	snap, err := engine.Compress(ctx, seq2, pta.Plan{
		Strategy: "gptae",
		Budget:   pta.ErrorBound(0.01),
		Options:  &pta.Options{ReadAhead: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-bounded display snapshot (ε = 1%%): %d rows, error %.4g\n", snap.C, snap.Error)
}
