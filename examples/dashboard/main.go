// Dashboard demonstrates the amnesic extension (Section 2.2 of the paper,
// after Palpanas et al.): a monitoring dashboard keeps the recent history of
// a metric at full fidelity while progressively forgetting detail about the
// past — old stretches collapse into wide segments, fresh ones stay fine.
// The same budget spent uniformly (plain PTA) is shown for contrast.
//
// Run with: go run ./examples/dashboard
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/temporal"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	// A day of per-minute latency-like measurements (Mackey-Glass chaos
	// makes a plausible bursty metric).
	series, err := dataset.Chaotic(1440)
	if err != nil {
		log.Fatal(err)
	}
	now := temporal.Chronon(series.Len() - 1)
	const budget = 48 // one segment per half hour, on average

	engine, err := pta.New()
	if err != nil {
		log.Fatal(err)
	}

	// Uniform PTA: minimal total error, agnostic of age.
	uniform, err := engine.Compress(ctx, series, pta.Plan{
		Strategy: "gptac",
		Budget:   pta.Size(budget),
		Options:  &pta.Options{ReadAhead: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Amnesic reduction through the same registry — only the strategy name
	// and the amnesic function change: errors in the oldest hours are
	// forgiven ~3000× more than errors right now (RA grows to ~2900 at the
	// oldest sample).
	am, err := engine.Compress(ctx, series, pta.Plan{
		Strategy: "amnesic",
		Budget:   pta.Size(budget),
		Options:  &pta.Options{Amnesic: pta.AmnesicLinearAge(now, 2.0)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("metric: %d samples → %d segments\n\n", series.Len(), budget)
	fmt.Printf("%-22s %-14s %-14s\n", "", "uniform PTA", "amnesic PTA")
	buckets := []struct {
		label      string
		start, end temporal.Chronon
	}{
		{"oldest third", 0, 479},
		{"middle third", 480, 959},
		{"recent third", 960, 1439},
	}
	for _, b := range buckets {
		fmt.Printf("%-22s %-14d %-14d\n", b.label+" segments",
			segmentsIn(uniform.Series, b.start, b.end),
			segmentsIn(am.Series, b.start, b.end))
	}
	fmt.Printf("\ntotal squared error: uniform %.1f, amnesic %.1f (amnesic shifts error into the past)\n",
		uniform.Error, am.Error)

	// The newest segments of the amnesic result are short; print them.
	fmt.Println("\nmost recent amnesic segments:")
	rows := am.Series.Rows
	for _, r := range rows[max(0, len(rows)-6):] {
		fmt.Printf("  %v  value %.2f\n", r.T, r.Aggs[0])
	}
}

func segmentsIn(seq *temporal.Sequence, lo, hi temporal.Chronon) int {
	n := 0
	for _, r := range seq.Rows {
		if r.T.Start <= hi && r.T.End >= lo {
			n++
		}
	}
	return n
}
