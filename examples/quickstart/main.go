// Quickstart walks through the paper's running example (Fig. 1): the proj
// relation, its span and instant temporal aggregations, and the
// parsimonious reduction to four tuples — expressed through the public pta
// facade.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ita"
	"repro/internal/sta"
	"repro/pta"
)

func main() {
	ctx := context.Background()
	// The proj relation of Fig. 1(a): who works on which project, for what
	// monthly salary, during which months.
	proj := dataset.Proj()
	fmt.Println("proj relation:")
	fmt.Print(proj)

	// The query: "average monthly salary per project".
	query := ita.Query{
		GroupBy: []string{"Proj"},
		Aggs:    []ita.AggSpec{{Func: ita.Avg, Attr: "Sal", As: "AvgSal"}},
	}

	// Span temporal aggregation reports one row per project and trimester —
	// a predictable size, but blind to where the data actually changes.
	spans, err := sta.Spans(1, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	staResult, err := sta.Eval(proj, query, spans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSTA (per trimester), Fig. 1(b):")
	fmt.Print(staResult)

	// Instant temporal aggregation reports every change point — faithful,
	// but potentially larger than the input.
	itaResult, err := ita.Eval(proj, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nITA (every change), Fig. 1(c):")
	fmt.Print(itaResult)

	// Parsimonious temporal aggregation through an Engine — the reusable,
	// context-aware session every consumer shares. Merge the most similar
	// adjacent ITA tuples until 4 rows remain, minimizing the sum squared
	// error. The "ptac" strategy is the exact dynamic program; swap the
	// name for any other registered evaluator (pta.Strategies() lists
	// them).
	engine, err := pta.New()
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Compress(ctx, itaResult, pta.Plan{Strategy: "ptac", Budget: pta.Size(4)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPTA (c = 4, error %.2f), Fig. 1(d):\n", res.Error)
	fmt.Print(res.Series)

	// The error-bounded variant instead fixes a tolerable error (here 20%
	// of the maximal merging error) and minimizes the size. Same engine,
	// same scratch buffers — only the plan changes.
	resE, err := engine.Compress(ctx, itaResult, pta.Plan{Strategy: "ptae", Budget: pta.ErrorBound(0.2)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPTA (ε = 0.2) reduced %d → %d tuples, error %.2f:\n",
		itaResult.Len(), resE.C, resE.Error)
	fmt.Print(resE.Series)
}
