// Command ptaload is the load generator for ptaserve: it synthesizes a
// workload of series from internal/dataset, drives the daemon through a
// cold phase (every series seen for the first time — cache misses that pay
// the DP fill) and configurable warm rounds (repeat plans against hot
// matrices — cache hits), and emits a JSON benchmark report with per-phase
// latency percentiles, throughput and the observed cache-hit ratio.
//
// The report shape is BENCH_serve.json (committed at the repo root and
// refreshed by the CI smoke step):
//
//	{
//	  "target": "http://127.0.0.1:8080", "series": 12, "rows": 512, ...
//	  "cold": {"requests": 12, "p50_ms": ..., "p99_ms": ..., "rps": ...},
//	  "warm": {"requests": 108, "hits": ..., "p50_ms": ..., ...},
//	  "hit_ratio": 0.97
//	}
//
// With -require-hits the process exits nonzero when the warm phase saw no
// cache hits — the CI guard that the serving stack's cache actually works
// end to end.
//
// With -peer-base the tool replays one round of the warm plan mix against a
// second daemon peered with the first (ptaserve -peers). That daemon never
// saw the workload, so every hit there was fetched over the peer warm tier;
// the report gains a "peer_warm" block and "peer_hit_ratio", and
// -require-hits guards the peer phase too.
//
// Example session:
//
//	ptaserve -addr 127.0.0.1:8080 -spill-dir /tmp/spill &
//	ptaload -base http://127.0.0.1:8080 -series 12 -rows 512 -c 4 \
//	        -warm-rounds 3 -require-hits -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/temporal"
)

// The client-side wire model mirrors internal/serve's JSON codec. ptaload
// deliberately does not import internal/serve: it exercises the daemon the
// way an external client would, over the documented wire schema, so a codec
// regression breaks this tool instead of being masked by shared structs.
type wireRow struct {
	Aggs  []float64 `json:"aggs"`
	Start int64     `json:"start"`
	End   int64     `json:"end"`
}

type wireSeries struct {
	AggNames []string  `json:"agg_names"`
	Rows     []wireRow `json:"rows"`
}

type wirePlan struct {
	Strategy string `json:"strategy"`
	Budget   string `json:"budget"`
}

type wireRequest struct {
	Series wireSeries `json:"series"`
	Plan   wirePlan   `json:"plan"`
}

type wireResult struct {
	C     int     `json:"c"`
	Error float64 `json:"error"`
	Cache string  `json:"cache"`
	Stats struct {
		Cells int64 `json:"cells"`
	} `json:"stats"`
}

// options carries every flag so tests drive run() without a flag set.
type options struct {
	base        string
	peerBase    string
	series      int
	rows        int
	workers     int
	warmRounds  int
	timeout     time.Duration
	out         string
	requireHits bool
	seed        int64
	strategy    string
}

// phaseReport is the latency/throughput summary of one phase.
type phaseReport struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"rps"`
}

// report is the full BENCH_serve.json document.
type report struct {
	Target     string      `json:"target"`
	Series     int         `json:"series"`
	Rows       int         `json:"rows"`
	Workers    int         `json:"workers"`
	WarmRounds int         `json:"warm_rounds"`
	Cold       phaseReport `json:"cold"`
	Warm       phaseReport `json:"warm"`
	// HitRatio is warm-phase hits over warm-phase non-error requests: after
	// the cold fill, this is the fraction of traffic the matrix cache (or
	// its spill tier) absorbed without re-running the DP.
	HitRatio float64 `json:"hit_ratio"`
	// PeerWarm (with -peer-base) replays one round of the warm plan mix
	// against a second daemon that never saw the workload: every hit there
	// was fetched over the peer warm tier instead of re-running the DP.
	PeerWarm     *phaseReport `json:"peer_warm,omitempty"`
	PeerHitRatio float64      `json:"peer_hit_ratio,omitempty"`
}

func main() {
	var opts options
	flag.StringVar(&opts.base, "base", "http://127.0.0.1:8080", "ptaserve base URL")
	flag.StringVar(&opts.peerBase, "peer-base", "", "second ptaserve base URL peered with -base: replay the warm mix there to measure peer-tier warm hits")
	flag.IntVar(&opts.series, "series", 12, "distinct series in the workload")
	flag.IntVar(&opts.rows, "rows", 512, "rows per series")
	flag.IntVar(&opts.workers, "c", 4, "concurrent client workers")
	flag.IntVar(&opts.warmRounds, "warm-rounds", 3, "repeat rounds over the warm plan mix")
	flag.DurationVar(&opts.timeout, "timeout", 30*time.Second, "per-request client timeout")
	flag.StringVar(&opts.out, "out", "", "also write the JSON report to this file")
	flag.BoolVar(&opts.requireHits, "require-hits", false, "exit nonzero when the warm phase saw no cache hits")
	flag.Int64Var(&opts.seed, "seed", 1, "workload generator seed")
	flag.StringVar(&opts.strategy, "strategy", "", "override the strategy of every plan (e.g. dist against a coordinator; default: ptac/ptae mix)")
	flag.Parse()

	logger := log.New(os.Stderr, "ptaload: ", 0)
	rep, err := run(opts, logger)
	if rep != nil {
		raw, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			logger.Fatal(merr)
		}
		raw = append(raw, '\n')
		os.Stdout.Write(raw)
		if opts.out != "" {
			if werr := os.WriteFile(opts.out, raw, 0o644); werr != nil {
				logger.Fatal(werr)
			}
		}
	}
	if err != nil {
		logger.Fatal(err)
	}
}

// buildWorkload synthesizes the series set, rotating the single-group
// generators so the traffic spans smooth, mixed-step and counter-shaped
// data — the profiles the DP cost model behaves differently on.
func buildWorkload(opts options) ([]wireSeries, error) {
	gens := []func(groups, perGroup, p int, seed int64) (*temporal.Sequence, error){
		dataset.Uniform, dataset.Mixed, dataset.Counter,
	}
	out := make([]wireSeries, opts.series)
	for i := range out {
		seq, err := gens[i%len(gens)](1, opts.rows, 1, opts.seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("workload series %d: %w", i, err)
		}
		ws := wireSeries{AggNames: seq.AggNames, Rows: make([]wireRow, len(seq.Rows))}
		for j, r := range seq.Rows {
			ws.Rows[j] = wireRow{
				Aggs:  r.Aggs,
				Start: int64(r.T.Start),
				End:   int64(r.T.End),
			}
		}
		out[i] = ws
	}
	return out, nil
}

// job is one pre-marshaled request body.
type job struct {
	body []byte
}

// outcome is one request's measurement.
type outcome struct {
	latency time.Duration
	cache   string // "hit", "miss", "bypass" or "" on error
	err     error
}

// runPhase drives the jobs through a bounded worker pool and summarizes.
func runPhase(client *http.Client, base string, jobs []job, workers int) (phaseReport, error) {
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]outcome, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				outcomes[i] = send(client, base, jobs[i].body)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var rep phaseReport
	latencies := make([]time.Duration, 0, len(outcomes))
	for _, o := range outcomes {
		rep.Requests++
		if o.err != nil {
			rep.Errors++
			continue
		}
		latencies = append(latencies, o.latency)
		switch o.cache {
		case "hit":
			rep.Hits++
		case "miss":
			rep.Misses++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50MS = percentileMS(latencies, 0.50)
	rep.P90MS = percentileMS(latencies, 0.90)
	rep.P99MS = percentileMS(latencies, 0.99)
	rep.Seconds = elapsed.Seconds()
	if rep.Seconds > 0 {
		rep.RPS = float64(rep.Requests-rep.Errors) / rep.Seconds
	}
	return rep, nil
}

// send posts one compression and reads the cache disposition.
func send(client *http.Client, base string, body []byte) outcome {
	start := time.Now()
	resp, err := client.Post(base+"/v1/compress", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	defer resp.Body.Close()
	var res wireResult
	if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
		return outcome{err: derr}
	}
	if resp.StatusCode != http.StatusOK {
		return outcome{err: fmt.Errorf("status %d", resp.StatusCode)}
	}
	return outcome{latency: time.Since(start), cache: res.Cache}
}

// percentileMS is the nearest-rank percentile of a sorted latency slice.
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// run executes the full cold+warm benchmark against opts.base.
func run(opts options, logger *log.Logger) (*report, error) {
	if opts.series < 1 || opts.rows < 8 {
		return nil, fmt.Errorf("ptaload: need series >= 1 and rows >= 8 (got %d, %d)", opts.series, opts.rows)
	}
	workload, err := buildWorkload(opts)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: opts.timeout}

	// The server must be up before the clock starts.
	resp, err := client.Get(opts.base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("ptaload: target %s unreachable: %w", opts.base, err)
	}
	resp.Body.Close()

	marshal := func(s wireSeries, p wirePlan) job {
		raw, err := json.Marshal(wireRequest{Series: s, Plan: p})
		if err != nil {
			panic(err) // static wire structs cannot fail to marshal
		}
		return job{body: raw}
	}

	// Cold phase: first sight of every series — each request pays the DP
	// fill. The plan matches the first warm-mix plan so the warm phase
	// starts fully cacheable.
	coldPlan := wirePlan{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", max(2, opts.rows/10))}
	if opts.strategy != "" {
		coldPlan.Strategy = opts.strategy
	}
	coldJobs := make([]job, len(workload))
	for i, s := range workload {
		coldJobs[i] = marshal(s, coldPlan)
	}
	logger.Printf("cold phase: %d series × 1 plan, %d workers", len(workload), opts.workers)
	cold, err := runPhase(client, opts.base, coldJobs, opts.workers)
	if err != nil {
		return nil, err
	}

	// Warm phase: rounds over a plan mix against the now-hot matrices —
	// two size budgets and one error budget, all resolved from the cached
	// matrix of each series.
	warmPlans := []wirePlan{
		{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", max(2, opts.rows/10))},
		{Strategy: "ptac", Budget: fmt.Sprintf("c=%d", max(3, opts.rows/5))},
		{Strategy: "ptae", Budget: "eps=0.5"},
	}
	if opts.strategy != "" {
		// A -strategy override (e.g. dist) keeps the budget mix but routes
		// every plan through the named strategy.
		for i := range warmPlans {
			warmPlans[i].Strategy = opts.strategy
		}
	}
	var warmJobs []job
	for round := 0; round < opts.warmRounds; round++ {
		for _, s := range workload {
			for _, p := range warmPlans {
				warmJobs = append(warmJobs, marshal(s, p))
			}
		}
	}
	logger.Printf("warm phase: %d rounds × %d series × %d plans", opts.warmRounds, len(workload), len(warmPlans))
	warm, err := runPhase(client, opts.base, warmJobs, opts.workers)
	if err != nil {
		return nil, err
	}

	rep := &report{
		Target: opts.base, Series: opts.series, Rows: opts.rows,
		Workers: opts.workers, WarmRounds: opts.warmRounds,
		Cold: cold, Warm: warm,
	}
	if ok := warm.Requests - warm.Errors; ok > 0 {
		rep.HitRatio = float64(warm.Hits) / float64(ok)
	}
	logger.Printf("cold p50=%.2fms p99=%.2fms rps=%.1f | warm p50=%.2fms p99=%.2fms rps=%.1f hit_ratio=%.3f",
		cold.P50MS, cold.P99MS, cold.RPS, warm.P50MS, warm.P99MS, warm.RPS, rep.HitRatio)

	// Peer-warm phase: one round of the same plan mix against a daemon
	// that never saw the workload. Its matrices can only arrive over the
	// peer tier, so hits here measure peer fetch + mmap restore latency.
	errorCount := cold.Errors + warm.Errors
	if opts.peerBase != "" {
		resp, err := client.Get(opts.peerBase + "/healthz")
		if err != nil {
			return rep, fmt.Errorf("ptaload: peer target %s unreachable: %w", opts.peerBase, err)
		}
		resp.Body.Close()
		var peerJobs []job
		for _, s := range workload {
			for _, p := range warmPlans {
				peerJobs = append(peerJobs, marshal(s, p))
			}
		}
		logger.Printf("peer-warm phase: 1 round × %d series × %d plans against %s", len(workload), len(warmPlans), opts.peerBase)
		peer, err := runPhase(client, opts.peerBase, peerJobs, opts.workers)
		if err != nil {
			return rep, err
		}
		rep.PeerWarm = &peer
		if ok := peer.Requests - peer.Errors; ok > 0 {
			rep.PeerHitRatio = float64(peer.Hits) / float64(ok)
		}
		logger.Printf("peer-warm p50=%.2fms p99=%.2fms rps=%.1f hit_ratio=%.3f",
			peer.P50MS, peer.P99MS, peer.RPS, rep.PeerHitRatio)
		errorCount += peer.Errors
		if opts.requireHits && peer.Hits == 0 {
			return rep, fmt.Errorf("ptaload: peer-warm phase saw zero cache hits across %d requests", peer.Requests)
		}
	}

	if errorCount > 0 {
		return rep, fmt.Errorf("ptaload: %d requests failed", errorCount)
	}
	if opts.requireHits && warm.Hits == 0 {
		return rep, fmt.Errorf("ptaload: warm phase saw zero cache hits across %d requests", warm.Requests)
	}
	return rep, nil
}
