package main

import (
	"io"
	"log"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pta"
)

// loadTestServer mounts a real serve.Server on an httptest listener.
func loadTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	engine, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunColdWarmAgainstLiveServer drives the full benchmark against an
// in-process daemon and checks the report invariants the CI smoke step
// relies on: the cold phase is all misses, the warm phase has hits, and
// -require-hits is satisfied.
func TestRunColdWarmAgainstLiveServer(t *testing.T) {
	ts := loadTestServer(t)
	logger := log.New(io.Discard, "", 0)
	opts := options{
		base: ts.URL, series: 3, rows: 64, workers: 2,
		warmRounds: 2, timeout: 30 * time.Second, requireHits: true,
	}
	rep, err := run(opts, logger)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Cold.Requests != 3 || rep.Cold.Errors != 0 {
		t.Errorf("cold phase: %+v", rep.Cold)
	}
	if rep.Cold.Misses != 3 || rep.Cold.Hits != 0 {
		t.Errorf("cold phase should be all misses: %+v", rep.Cold)
	}
	// 2 rounds × 3 series × 3 plans.
	if rep.Warm.Requests != 18 || rep.Warm.Errors != 0 {
		t.Errorf("warm phase: %+v", rep.Warm)
	}
	// Every warm plan resolves against the cold-filled matrix (size and
	// error budgets share one DP class per series), minus at most one
	// first-round miss per series if the class ever splits. 15/18 floor.
	if rep.Warm.Hits < 15 {
		t.Errorf("warm hits = %d, want >= 15", rep.Warm.Hits)
	}
	if rep.HitRatio < 0.8 {
		t.Errorf("hit ratio = %v, want >= 0.8", rep.HitRatio)
	}
	if rep.Warm.P99MS < rep.Warm.P50MS {
		t.Errorf("p99 %v < p50 %v", rep.Warm.P99MS, rep.Warm.P50MS)
	}
	if rep.Cold.RPS <= 0 || rep.Warm.RPS <= 0 {
		t.Errorf("rps cold=%v warm=%v, want > 0", rep.Cold.RPS, rep.Warm.RPS)
	}
}

// TestRunUnreachableTarget: a dead target must error on the health probe,
// before any phase runs.
func TestRunUnreachableTarget(t *testing.T) {
	_, err := run(options{
		base: "http://127.0.0.1:1", series: 1, rows: 64, workers: 1,
		warmRounds: 1, timeout: time.Second,
	}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("run succeeded against an unreachable target")
	}
}

// TestRunValidation rejects degenerate workload shapes.
func TestRunValidation(t *testing.T) {
	if _, err := run(options{series: 0, rows: 64}, log.New(io.Discard, "", 0)); err == nil {
		t.Error("series=0 accepted")
	}
	if _, err := run(options{series: 1, rows: 4}, log.New(io.Discard, "", 0)); err == nil {
		t.Error("rows=4 accepted")
	}
}
