package main

import (
	"io"
	"log"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pta"
)

// loadTestServer mounts a real serve.Server on an httptest listener.
func loadTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return loadTestServerCfg(t, serve.Config{})
}

// loadTestServerCfg is loadTestServer with a caller-shaped Config (the
// Engine is always filled in).
func loadTestServerCfg(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	engine, err := pta.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = engine
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunColdWarmAgainstLiveServer drives the full benchmark against an
// in-process daemon and checks the report invariants the CI smoke step
// relies on: the cold phase is all misses, the warm phase has hits, and
// -require-hits is satisfied.
func TestRunColdWarmAgainstLiveServer(t *testing.T) {
	ts := loadTestServer(t)
	logger := log.New(io.Discard, "", 0)
	opts := options{
		base: ts.URL, series: 3, rows: 64, workers: 2,
		warmRounds: 2, timeout: 30 * time.Second, requireHits: true,
	}
	rep, err := run(opts, logger)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Cold.Requests != 3 || rep.Cold.Errors != 0 {
		t.Errorf("cold phase: %+v", rep.Cold)
	}
	if rep.Cold.Misses != 3 || rep.Cold.Hits != 0 {
		t.Errorf("cold phase should be all misses: %+v", rep.Cold)
	}
	// 2 rounds × 3 series × 3 plans.
	if rep.Warm.Requests != 18 || rep.Warm.Errors != 0 {
		t.Errorf("warm phase: %+v", rep.Warm)
	}
	// Every warm plan resolves against the cold-filled matrix (size and
	// error budgets share one DP class per series), minus at most one
	// first-round miss per series if the class ever splits. 15/18 floor.
	if rep.Warm.Hits < 15 {
		t.Errorf("warm hits = %d, want >= 15", rep.Warm.Hits)
	}
	if rep.HitRatio < 0.8 {
		t.Errorf("hit ratio = %v, want >= 0.8", rep.HitRatio)
	}
	if rep.Warm.P99MS < rep.Warm.P50MS {
		t.Errorf("p99 %v < p50 %v", rep.Warm.P99MS, rep.Warm.P50MS)
	}
	if rep.Cold.RPS <= 0 || rep.Warm.RPS <= 0 {
		t.Errorf("rps cold=%v warm=%v, want > 0", rep.Cold.RPS, rep.Warm.RPS)
	}
}

// TestRunPeerWarmPhase: with -peer-base pointing at a peered daemon that
// never saw the workload, the peer_warm block must report hits — every
// matrix arriving over the peer tier, none from a local fill.
func TestRunPeerWarmPhase(t *testing.T) {
	primary := loadTestServerCfg(t, serve.Config{SpillDir: t.TempDir()})
	peer := loadTestServerCfg(t, serve.Config{
		SpillDir: t.TempDir(),
		Peers:    []string{primary.URL},
	})
	rep, err := run(options{
		base: primary.URL, peerBase: peer.URL, series: 3, rows: 64,
		workers: 2, warmRounds: 1, timeout: 30 * time.Second, requireHits: true,
	}, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.PeerWarm == nil {
		t.Fatal("report has no peer_warm block")
	}
	// 1 round × 3 series × 3 plans, every one peer-warmed.
	if rep.PeerWarm.Requests != 9 || rep.PeerWarm.Errors != 0 {
		t.Errorf("peer-warm phase: %+v", rep.PeerWarm)
	}
	if rep.PeerWarm.Hits != 9 || rep.PeerHitRatio != 1 {
		t.Errorf("peer-warm hits = %d ratio = %v, want 9 and 1.0",
			rep.PeerWarm.Hits, rep.PeerHitRatio)
	}
}

// TestRunPeerUnreachable: a dead -peer-base must fail the run even when the
// primary phases succeeded.
func TestRunPeerUnreachable(t *testing.T) {
	ts := loadTestServer(t)
	rep, err := run(options{
		base: ts.URL, peerBase: "http://127.0.0.1:1", series: 1, rows: 64,
		workers: 1, warmRounds: 1, timeout: 5 * time.Second,
	}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("run succeeded with an unreachable peer target")
	}
	if rep == nil || rep.PeerWarm != nil {
		t.Errorf("want a report with primary phases only, got %+v", rep)
	}
}

// TestRunUnreachableTarget: a dead target must error on the health probe,
// before any phase runs.
func TestRunUnreachableTarget(t *testing.T) {
	_, err := run(options{
		base: "http://127.0.0.1:1", series: 1, rows: 64, workers: 1,
		warmRounds: 1, timeout: time.Second,
	}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("run succeeded against an unreachable target")
	}
}

// TestRunValidation rejects degenerate workload shapes.
func TestRunValidation(t *testing.T) {
	if _, err := run(options{series: 0, rows: 64}, log.New(io.Discard, "", 0)); err == nil {
		t.Error("series=0 accepted")
	}
	if _, err := run(options{series: 1, rows: 4}, log.New(io.Discard, "", 0)); err == nil {
		t.Error("rows=4 accepted")
	}
}
