// Command ptagen writes the synthetic evaluation datasets (Section 7.1 /
// Table 1 stand-ins) to CSV so they can be inspected, replayed through
// ptacli, or loaded elsewhere. Relations (proj, etds, incumbents) use the
// relation CSV format; series (chaotic, tide, wind, uniform) are written as
// sequential relations.
//
// Examples:
//
//	ptagen -dataset proj -out proj.csv
//	ptagen -dataset etds -records 60000 -horizon 1600 -seed 1 -out etds.csv
//	ptagen -dataset wind -n 6574 -dims 12 -gaps 215 -out wind.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/csvio"
	"repro/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "", "proj | etds | incumbents | chaotic | tide | wind | uniform")
		out     = flag.String("out", "", "output CSV path (required)")
		seed    = flag.Int64("seed", 1, "generator seed")
		records = flag.Int("records", 60000, "etds/incumbents: number of tuples")
		horizon = flag.Int("horizon", 1600, "etds/incumbents: months covered")
		n       = flag.Int("n", 1800, "series length")
		dims    = flag.Int("dims", 12, "wind/uniform: dimensions")
		gaps    = flag.Int("gaps", 215, "wind: number of temporal gaps")
		groups  = flag.Int("groups", 1, "uniform: aggregation groups")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: ptagen -dataset <name> -out <file.csv> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*name, *out, genParams{
		seed: *seed, records: *records, horizon: *horizon,
		n: *n, dims: *dims, gaps: *gaps, groups: *groups,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ptagen: %v\n", err)
		os.Exit(1)
	}
}

type genParams struct {
	seed                  int64
	records, horizon      int
	n, dims, gaps, groups int
}

func run(name, out string, p genParams) error {
	switch name {
	case "proj":
		return csvio.SaveRelationFile(out, dataset.Proj())
	case "etds":
		rel, err := dataset.ETDS(dataset.ETDSConfig{Records: p.records, Horizon: p.horizon, Seed: p.seed})
		if err != nil {
			return err
		}
		return csvio.SaveRelationFile(out, rel)
	case "incumbents":
		rel, err := dataset.Incumbents(dataset.IncumbentsConfig{
			Records: p.records, Depts: 8, Projs: 6, Horizon: p.horizon, Seed: p.seed,
		})
		if err != nil {
			return err
		}
		return csvio.SaveRelationFile(out, rel)
	case "chaotic":
		seq, err := dataset.Chaotic(p.n)
		if err != nil {
			return err
		}
		return csvio.SaveSequenceFile(out, seq)
	case "tide":
		seq, err := dataset.Tide(p.n, p.seed)
		if err != nil {
			return err
		}
		return csvio.SaveSequenceFile(out, seq)
	case "wind":
		seq, err := dataset.Wind(p.n, p.dims, p.gaps, p.seed)
		if err != nil {
			return err
		}
		return csvio.SaveSequenceFile(out, seq)
	case "uniform":
		perGroup := p.n / max(1, p.groups)
		seq, err := dataset.Uniform(p.groups, max(1, perGroup), p.dims, p.seed)
		if err != nil {
			return err
		}
		return csvio.SaveSequenceFile(out, seq)
	}
	return fmt.Errorf("unknown dataset %q", name)
}
