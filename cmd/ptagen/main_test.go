package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/csvio"
)

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	p := genParams{seed: 1, records: 300, horizon: 120, n: 100, dims: 3, gaps: 5, groups: 2}
	for _, name := range []string{"proj", "etds", "incumbents", "chaotic", "tide", "wind", "uniform"} {
		out := filepath.Join(dir, name+".csv")
		if err := run(name, out, p); err != nil {
			t.Fatalf("run(%s): %v", name, err)
		}
		info, err := os.Stat(out)
		if err != nil || info.Size() == 0 {
			t.Errorf("%s: empty or missing output (%v)", name, err)
		}
	}
}

func TestRunProjRoundTrips(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "proj.csv")
	if err := run("proj", out, genParams{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	rel, err := csvio.LoadRelationFile(out)
	if err != nil {
		t.Fatalf("LoadRelationFile: %v", err)
	}
	if rel.Len() != 5 {
		t.Errorf("proj has %d tuples, want 5", rel.Len())
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("zap", filepath.Join(t.TempDir(), "x.csv"), genParams{}); err == nil ||
		!strings.Contains(err.Error(), "unknown dataset") {
		t.Errorf("unknown dataset should fail, got %v", err)
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run("wind", filepath.Join(t.TempDir(), "w.csv"), genParams{n: 2, dims: 1, gaps: 99}); err == nil {
		t.Error("invalid wind params should fail")
	}
}
