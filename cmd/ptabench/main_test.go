package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestJSONTableRoundTrip: the -json rendering is stable, complete, and
// parseable — the contract future BENCH_*.json perf trajectories rely on.
func TestJSONTableRoundTrip(t *testing.T) {
	in := jsonTable{
		ID: "fig0", Title: "demo", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"},
		ElapsedMS: 1.5, Scale: 1, Seed: 42,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"id"`, `"header"`, `"rows"`, `"elapsed_ms"`, `"scale"`, `"seed"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON lacks %s: %s", key, raw)
		}
	}
	var out jsonTable
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || len(out.Rows) != 1 || out.ElapsedMS != 1.5 {
		t.Errorf("round trip changed the table: %+v", out)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tab := &experiments.Table{
		ID: "demo", Header: []string{"x", "y"}, Rows: [][]string{{"1", "2"}},
	}
	if err := writeCSV(dir, tab); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(raw); got != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}
