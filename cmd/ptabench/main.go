// Command ptabench regenerates the tables and figures of the paper's
// evaluation (Section 7). Each experiment prints an aligned text table whose
// shape corresponds to one paper artifact; -json instead emits the tables as
// a machine-readable JSON array (for recording BENCH_*.json perf
// trajectories across revisions), and -csv writes one CSV per table.
//
// The experiment suite enumerates the compression strategies from the public
// pta registry; `ptabench -exp strategies` runs every registered evaluator
// under both budget kinds.
//
// Usage:
//
//	ptabench -list
//	ptabench -exp fig15
//	ptabench -exp strategies -json > BENCH_strategies.json
//	ptabench -all -scale 0.5 -csv out/
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/pta"
)

// jsonTable is the machine-readable rendering of one experiment outcome.
type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Scale     float64    `json:"scale"`
	Seed      int64      `json:"seed"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		exp      = flag.String("exp", "", "run a single experiment by id (e.g. fig15)")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = reproduction scale)")
		seed     = flag.Int64("seed", 42, "dataset generation seed")
		quick    = flag.Bool("quick", false, "tiny smoke-test sizes")
		parallel = flag.Int("parallel", 1, "engine worker goroutines for group-parallel strategies (0 = all cores)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonMode = flag.Bool("json", false, "emit a JSON array of tables on stdout instead of text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	// SIGINT/SIGTERM cancel the run context: the active experiment aborts
	// mid-evaluation and the harness exits with a clean message instead of
	// dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine, err := pta.New(pta.WithParallelism(*parallel))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick, Engine: engine}
	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "ptabench: need -list, -exp <id>, or -all (see -help)")
		os.Exit(2)
	}

	var jsonOut []jsonTable
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ptabench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := e.Run(ctx, cfg)
		if err != nil {
			if errors.Is(err, pta.ErrCanceled) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "ptabench: interrupted during %s\n", id)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "ptabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *jsonMode {
			jsonOut = append(jsonOut, jsonTable{
				ID: tab.ID, Title: tab.Title, Header: tab.Header, Rows: tab.Rows,
				Notes: tab.Notes, ElapsedMS: float64(elapsed.Microseconds()) / 1000.0,
				Scale: *scale, Seed: *seed,
			})
		} else {
			if err := tab.Format(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("(%s finished in %v)\n\n", id, elapsed.Round(time.Millisecond))
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	if err := tab.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
