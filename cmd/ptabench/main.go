// Command ptabench regenerates the tables and figures of the paper's
// evaluation (Section 7). Each experiment prints an aligned text table whose
// shape corresponds to one paper artifact; EXPERIMENTS.md records the
// paper-reported values next to the reproduced ones.
//
// Usage:
//
//	ptabench -list
//	ptabench -exp fig15
//	ptabench -all -scale 0.5 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		exp    = flag.String("exp", "", "run a single experiment by id (e.g. fig15)")
		all    = flag.Bool("all", false, "run every experiment")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = reproduction scale)")
		seed   = flag.Int64("seed", 42, "dataset generation seed")
		quick  = flag.Bool("quick", false, "tiny smoke-test sizes")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick}
	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "ptabench: need -list, -exp <id>, or -all (see -help)")
		os.Exit(2)
	}

	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ptabench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ptabench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
