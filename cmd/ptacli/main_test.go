package main

import (
	"testing"

	"repro/internal/ita"
	"repro/pta"
)

func TestParseQuery(t *testing.T) {
	q, err := parseQuery("Proj,Dept", "avg:Sal,count:,max:Sal:TopSal")
	if err != nil {
		t.Fatalf("parseQuery: %v", err)
	}
	if len(q.GroupBy) != 2 || q.GroupBy[0] != "Proj" || q.GroupBy[1] != "Dept" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Aggs) != 3 {
		t.Fatalf("Aggs = %v", q.Aggs)
	}
	if q.Aggs[0].Func != ita.Avg || q.Aggs[0].Attr != "Sal" {
		t.Errorf("agg 0 = %+v", q.Aggs[0])
	}
	if q.Aggs[1].Func != ita.Count || q.Aggs[1].Attr != "" {
		t.Errorf("agg 1 = %+v", q.Aggs[1])
	}
	if q.Aggs[2].As != "TopSal" {
		t.Errorf("agg 2 = %+v", q.Aggs[2])
	}
}

func TestResolveBudget(t *testing.T) {
	if b, err := resolveBudget("c=9", 0, -1); err != nil || b != pta.Size(9) {
		t.Errorf("-budget c=9: %v %v", b, err)
	}
	if b, err := resolveBudget("", 4, -1); err != nil || b != pta.Size(4) {
		t.Errorf("-c 4: %v %v", b, err)
	}
	if b, err := resolveBudget("", 0, 0.25); err != nil || b != pta.ErrorBound(0.25) {
		t.Errorf("-eps 0.25: %v %v", b, err)
	}
	if _, err := resolveBudget("", 0, -1); err == nil {
		t.Error("no budget should fail")
	}
	// -budget wins over the shorthands.
	if b, _ := resolveBudget("eps=0.1", 4, -1); b != pta.ErrorBound(0.1) {
		t.Errorf("-budget precedence: %v", b)
	}
}

func TestReadAhead(t *testing.T) {
	if readAhead(-1) != pta.ReadAheadInf {
		t.Error("-delta -1 should map to ∞")
	}
	if readAhead(0) != pta.ReadAheadEager {
		t.Error("-delta 0 should map to eager")
	}
	if readAhead(3) != 3 {
		t.Error("-delta 3 should pass through")
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := parseQuery("", ""); err == nil {
		t.Error("no aggregates should fail")
	}
	if _, err := parseQuery("", "median:Sal"); err == nil {
		t.Error("unknown function should fail")
	}
}
