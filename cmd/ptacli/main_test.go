package main

import (
	"testing"

	"repro/internal/ita"
)

func TestParseQuery(t *testing.T) {
	q, err := parseQuery("Proj,Dept", "avg:Sal,count:,max:Sal:TopSal")
	if err != nil {
		t.Fatalf("parseQuery: %v", err)
	}
	if len(q.GroupBy) != 2 || q.GroupBy[0] != "Proj" || q.GroupBy[1] != "Dept" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Aggs) != 3 {
		t.Fatalf("Aggs = %v", q.Aggs)
	}
	if q.Aggs[0].Func != ita.Avg || q.Aggs[0].Attr != "Sal" {
		t.Errorf("agg 0 = %+v", q.Aggs[0])
	}
	if q.Aggs[1].Func != ita.Count || q.Aggs[1].Attr != "" {
		t.Errorf("agg 1 = %+v", q.Aggs[1])
	}
	if q.Aggs[2].As != "TopSal" {
		t.Errorf("agg 2 = %+v", q.Aggs[2])
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := parseQuery("", ""); err == nil {
		t.Error("no aggregates should fail")
	}
	if _, err := parseQuery("", "median:Sal"); err == nil {
		t.Error("unknown function should fail")
	}
}
