// Command ptacli runs temporal aggregation queries over CSV relations: ITA
// (instant), STA (span), exact PTA (size- or error-bounded), and the
// streaming greedy variants.
//
// The input format is the one produced by internal/csvio: a header of
// name:kind columns followed by tstart,tend, e.g.
//
//	Empl:string,Proj:string,Sal:float,tstart,tend
//	John,A,800,1,4
//
// Examples:
//
//	ptacli -in proj.csv -group Proj -agg avg:Sal ita
//	ptacli -in proj.csv -group Proj -agg avg:Sal -c 4 pta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -eps 0.2 pta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -c 4 -delta 1 gpta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -span 4 sta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/ita"
	"repro/internal/sta"
	"repro/internal/temporal"
)

func main() {
	var (
		in    = flag.String("in", "", "input relation CSV (required)")
		out   = flag.String("out", "", "output CSV (default: stdout, human readable)")
		group = flag.String("group", "", "comma-separated grouping attributes")
		aggs  = flag.String("agg", "", "comma-separated aggregates func:attr[:as] (e.g. avg:Sal,count:)")
		c     = flag.Int("c", 0, "size bound for pta/gpta")
		eps   = flag.Float64("eps", -1, "error bound in [0,1] for pta/gpta (alternative to -c)")
		delta = flag.Int("delta", 1, "read-ahead δ for gpta (-1 = ∞)")
		span  = flag.Int64("span", 0, "span width for sta")
	)
	flag.Parse()
	if *in == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptacli -in data.csv [flags] {ita|sta|pta|gpta}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	op := flag.Arg(0)

	rel, err := csvio.LoadRelationFile(*in)
	if err != nil {
		fail(err)
	}
	query, err := parseQuery(*group, *aggs)
	if err != nil {
		fail(err)
	}

	var result *temporal.Sequence
	switch op {
	case "ita":
		result, err = ita.Eval(rel, query)
	case "sta":
		if *span <= 0 {
			fail(fmt.Errorf("sta needs -span > 0"))
		}
		tspan, ok := rel.TimeSpan()
		if !ok {
			fail(fmt.Errorf("empty input relation"))
		}
		spans, serr := sta.Spans(tspan.Start, tspan.End, *span)
		if serr != nil {
			fail(serr)
		}
		result, err = sta.Eval(rel, query, spans)
	case "pta":
		seq, ierr := ita.Eval(rel, query)
		if ierr != nil {
			fail(ierr)
		}
		var res *core.DPResult
		switch {
		case *eps >= 0:
			res, err = core.PTAe(seq, *eps, core.Options{})
		case *c > 0:
			res, err = core.PTAc(seq, *c, core.Options{})
		default:
			fail(fmt.Errorf("pta needs -c or -eps"))
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "pta: reduced %d ITA tuples to %d, error %.6g\n", seq.Len(), res.C, res.Error)
			result = res.Sequence
		}
	case "gpta":
		it, ierr := ita.NewIterator(rel, query)
		if ierr != nil {
			fail(ierr)
		}
		d := *delta
		if d < 0 {
			d = core.DeltaInf
		}
		var res *core.GreedyResult
		switch {
		case *eps >= 0:
			// Estimates per Section 6.3: n̂ = 2|r|−1, Êmax from the exact
			// computation over a second pass (the CLI has the data local).
			seq, serr := ita.Eval(rel, query)
			if serr != nil {
				fail(serr)
			}
			est, eerr := core.ExactEstimate(seq, core.Options{})
			if eerr != nil {
				fail(eerr)
			}
			res, err = core.GPTAe(it, *eps, d, est, core.Options{})
		case *c > 0:
			res, err = core.GPTAc(it, *c, d, core.Options{})
		default:
			fail(fmt.Errorf("gpta needs -c or -eps"))
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "gpta: result size %d, error %.6g, max heap %d\n", res.C, res.Error, res.MaxHeap)
			result = res.Sequence
		}
	default:
		fail(fmt.Errorf("unknown operation %q (want ita, sta, pta or gpta)", op))
	}
	if err != nil {
		fail(err)
	}

	if *out != "" {
		if err := csvio.SaveSequenceFile(*out, result); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(result.String())
}

func parseQuery(group, aggs string) (ita.Query, error) {
	var q ita.Query
	if group != "" {
		q.GroupBy = strings.Split(group, ",")
	}
	if aggs == "" {
		return q, fmt.Errorf("need at least one -agg")
	}
	for _, spec := range strings.Split(aggs, ",") {
		parts := strings.SplitN(spec, ":", 3)
		f, err := ita.ParseFunc(parts[0])
		if err != nil {
			return q, err
		}
		a := ita.AggSpec{Func: f}
		if len(parts) > 1 {
			a.Attr = parts[1]
		}
		if len(parts) > 2 {
			a.As = parts[2]
		}
		q.Aggs = append(q.Aggs, a)
	}
	return q, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ptacli: %v\n", err)
	os.Exit(1)
}
