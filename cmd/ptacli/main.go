// Command ptacli runs temporal aggregation queries over CSV relations: ITA
// (instant), STA (span), and parsimonious compression through the public
// pta engine — any registered strategy, under a size or error budget,
// optionally group-parallel (-parallel).
//
// SIGINT/SIGTERM cancel the evaluation context: a long compression aborts
// mid-matrix and the command exits with a clean message and status 130
// instead of dying mid-write.
//
// The input format is the one produced by internal/csvio: a header of
// name:kind columns followed by tstart,tend, e.g.
//
//	Empl:string,Proj:string,Sal:float,tstart,tend
//	John,A,800,1,4
//
// Examples:
//
//	ptacli -list-strategies
//	ptacli -in proj.csv -group Proj -agg avg:Sal ita
//	ptacli -in proj.csv -group Proj -agg avg:Sal -budget c=4 pta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -strategy gms -budget eps=0.2 pta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -c 4 -parallel 4 pta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -c 4 -delta 1 gpta
//	ptacli -in proj.csv -group Proj -agg avg:Sal -span 4 sta
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/csvio"
	"repro/internal/dist"
	"repro/internal/ita"
	"repro/internal/sta"
	"repro/internal/temporal"
	"repro/pta"
)

func main() {
	var (
		in       = flag.String("in", "", "input relation CSV (required)")
		out      = flag.String("out", "", "output CSV (default: stdout, human readable)")
		group    = flag.String("group", "", "comma-separated grouping attributes")
		aggs     = flag.String("agg", "", "comma-separated aggregates func:attr[:as] (e.g. avg:Sal,count:)")
		strategy = flag.String("strategy", "", "compression strategy (see -list-strategies; default ptac, gpta: gptac)")
		budget   = flag.String("budget", "", "compression budget: c=<size> or eps=<fraction>")
		c        = flag.Int("c", 0, "size budget shorthand (same as -budget c=N)")
		eps      = flag.Float64("eps", -1, "error budget shorthand (same as -budget eps=X)")
		delta    = flag.Int("delta", 1, "read-ahead δ for streaming strategies (-1 = ∞)")
		parallel = flag.Int("parallel", 1, "engine worker goroutines for group-parallel strategies (0 = all cores)")
		span     = flag.Int64("span", 0, "span width for sta")
		list     = flag.Bool("list-strategies", false, "list registered compression strategies and exit")
		workers  = flag.String("workers", "", "comma-separated ptaserve worker base URLs enabling -strategy dist")
	)
	flag.Parse()
	if *list {
		listStrategies()
		return
	}
	if *in == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptacli -in data.csv [flags] {ita|sta|pta|gpta}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	op := flag.Arg(0)

	// SIGINT/SIGTERM cancel the evaluation context; the running strategy
	// observes the cancellation inside its DP or merge loops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine, err := pta.New(pta.WithParallelism(*parallel))
	if err != nil {
		fail(err)
	}
	if *workers != "" {
		// -strategy dist scatters the compression across a ptaserve fleet;
		// the coordinator rides the same engine call path as any strategy.
		var urls []string
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				urls = append(urls, w)
			}
		}
		co, derr := dist.New(dist.WithWorkers(urls...))
		if derr != nil {
			fail(derr)
		}
		dist.Activate(co)
	}

	rel, err := csvio.LoadRelationFile(*in)
	if err != nil {
		fail(err)
	}
	query, err := parseQuery(*group, *aggs)
	if err != nil {
		fail(err)
	}

	var result *temporal.Sequence
	switch op {
	case "ita":
		result, err = ita.Eval(rel, query)
	case "sta":
		if *span <= 0 {
			fail(fmt.Errorf("sta needs -span > 0"))
		}
		tspan, ok := rel.TimeSpan()
		if !ok {
			fail(fmt.Errorf("empty input relation"))
		}
		spans, serr := sta.Spans(tspan.Start, tspan.End, *span)
		if serr != nil {
			fail(serr)
		}
		result, err = sta.Eval(rel, query, spans)
	case "pta":
		b, berr := resolveBudget(*budget, *c, *eps)
		if berr != nil {
			fail(berr)
		}
		name := *strategy
		if name == "" {
			name = "ptac"
		}
		seq, ierr := ita.Eval(rel, query)
		if ierr != nil {
			fail(ierr)
		}
		res, cerr := engine.Compress(ctx, seq, pta.Plan{
			Strategy: name,
			Budget:   b,
			Options:  &pta.Options{ReadAhead: readAhead(*delta)},
		})
		if cerr != nil {
			fail(cerr)
		}
		fmt.Fprintf(os.Stderr, "pta: %s(%v) reduced %d ITA tuples to %d, error %.6g\n",
			name, b, seq.Len(), res.C, res.Error)
		result = res.Series
	case "gpta":
		b, berr := resolveBudget(*budget, *c, *eps)
		if berr != nil {
			fail(berr)
		}
		name := *strategy
		if name == "" {
			name = "gptac"
		}
		opts := pta.Options{ReadAhead: readAhead(*delta)}
		if b.Kind() == pta.BudgetError {
			// Estimates per Section 6.3: the CLI has the data local, so a
			// second pass provides the exact (N, EMax).
			seq, serr := ita.Eval(rel, query)
			if serr != nil {
				fail(serr)
			}
			est, eerr := pta.ExactEstimate(seq, opts)
			if eerr != nil {
				fail(eerr)
			}
			opts.Estimate = &est
		}
		it, ierr := ita.NewIterator(rel, query)
		if ierr != nil {
			fail(ierr)
		}
		res, cerr := engine.CompressStream(ctx, it, pta.Plan{
			Strategy: name,
			Budget:   b,
			Options:  &opts,
		}, nil)
		if cerr != nil {
			fail(cerr)
		}
		fmt.Fprintf(os.Stderr, "gpta: %s(%v) result size %d, error %.6g, max heap %d\n",
			name, b, res.C, res.Error, res.Stats.MaxHeap)
		result = res.Series
	default:
		fail(fmt.Errorf("unknown operation %q (want ita, sta, pta or gpta)", op))
	}
	if err != nil {
		fail(err)
	}

	// Never start writing the output of an interrupted run.
	if err := ctx.Err(); err != nil {
		fail(err)
	}
	if *out != "" {
		if err := csvio.SaveSequenceFile(*out, result); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(result.String())
}

// resolveBudget merges the -budget flag with the -c/-eps shorthands.
func resolveBudget(budget string, c int, eps float64) (pta.Budget, error) {
	if budget != "" {
		return pta.ParseBudget(budget)
	}
	switch {
	case eps >= 0:
		b := pta.ErrorBound(eps)
		return b, b.Validate()
	case c > 0:
		b := pta.Size(c)
		return b, b.Validate()
	}
	return pta.Budget{}, fmt.Errorf("need -budget, -c or -eps")
}

// readAhead maps the CLI δ convention (-1 = ∞) onto pta.Options.ReadAhead.
func readAhead(delta int) int {
	switch {
	case delta < 0:
		return pta.ReadAheadInf
	case delta == 0:
		return pta.ReadAheadEager
	default:
		return delta
	}
}

// listStrategies prints the canonical registry table — the same description
// source GET /v1/strategies serves as JSON (see pta.FormatStrategies).
func listStrategies() {
	if err := pta.FormatStrategies(os.Stdout); err != nil {
		fail(err)
	}
}

func parseQuery(group, aggs string) (ita.Query, error) {
	var q ita.Query
	if group != "" {
		q.GroupBy = strings.Split(group, ",")
	}
	if aggs == "" {
		return q, fmt.Errorf("need at least one -agg")
	}
	for _, spec := range strings.Split(aggs, ",") {
		parts := strings.SplitN(spec, ":", 3)
		f, err := ita.ParseFunc(parts[0])
		if err != nil {
			return q, err
		}
		a := ita.AggSpec{Func: f}
		if len(parts) > 1 {
			a.Attr = parts[1]
		}
		if len(parts) > 2 {
			a.As = parts[2]
		}
		q.Aggs = append(q.Aggs, a)
	}
	return q, nil
}

// fail reports the error and exits: status 130 with a clean "interrupted"
// message when the run was canceled by a signal, status 1 otherwise.
func fail(err error) {
	if errors.Is(err, pta.ErrCanceled) || errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ptacli: interrupted")
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "ptacli: %v\n", err)
	os.Exit(1)
}
