package main

import (
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded log sink: the server goroutine writes while
// the test polls.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestRunServesAndShutsDown boots the daemon on a free port, exercises
// /healthz and one /v1/compress with the shared testdata request, then
// triggers the graceful-shutdown path via SIGINT to this process.
func TestRunServesAndShutsDown(t *testing.T) {
	var buf syncBuffer
	logger := log.New(&buf, "", 0)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr: "127.0.0.1:0", parallel: 1, cache: 8,
			timeout: 5 * time.Second, maxBody: 1 << 20,
			spillDir:  t.TempDir(),
			admission: "reject",
		}, logger)
	}()

	// The listen address appears in the first log line.
	var base string
	for i := 0; i < 100; i++ {
		if s := buf.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			base = strings.Fields(line)[0]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never logged its address: %q", buf.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(metricsBody), "ptaserve_uptime_seconds") {
		t.Fatalf("metrics status %d, body %.120s", resp.StatusCode, metricsBody)
	}

	req, err := os.Open("../../internal/serve/testdata/compress_request.json")
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	resp, err = http.Post(base+"/v1/compress", "application/json", req)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"c":4`) {
		t.Errorf("compress response missing c=4: %s", body)
	}

	// Graceful shutdown: run() must return nil once the context fires.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down after SIGINT")
	}
	if !strings.Contains(buf.String(), "shut down cleanly") {
		t.Errorf("missing clean-shutdown log: %q", buf.String())
	}
}
