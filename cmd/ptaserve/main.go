// Command ptaserve is the HTTP/JSON compression daemon: a network boundary
// around the pta Engine with a shared LRU matrix cache, so many clients can
// request many resolutions of hot series cheaply (internal/serve holds the
// handlers; docs/ARCHITECTURE.md the design).
//
// Endpoints:
//
//	POST /v1/compress       one series, one plan
//	POST /v1/compress/many  one series, several plans (amortized)
//	GET  /v1/strategies     the strategy registry
//	GET  /v1/stats          cache and request counters
//	GET  /healthz           liveness
//
// SIGINT/SIGTERM drain in-flight requests and exit 0 (graceful shutdown), so
// process managers can roll the daemon without dropping evaluations.
//
// Example session:
//
//	ptaserve -addr :8080 -parallel 4 &
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/compress -d @request.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/pta"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port, :0 picks a free port)")
		parallel = flag.Int("parallel", 1, "engine worker goroutines for group-parallel strategies (0 = all cores)")
		cache    = flag.Int("cache", 64, "matrix cache capacity in entries")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline (requests may tighten it with timeout_ms)")
		maxBody  = flag.Int64("max-body", 8<<20, "request body limit in bytes")
		inflight = flag.Int("inflight", 0, "max concurrently evaluated compressions (0 = 2×GOMAXPROCS)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "ptaserve: ", log.LstdFlags)
	if err := run(*addr, *parallel, *cache, *timeout, *maxBody, *inflight, logger); err != nil {
		logger.Fatal(err)
	}
}

// run wires the engine and server and serves until SIGINT/SIGTERM.
func run(addr string, parallel, cache int, timeout time.Duration, maxBody int64, inflight int, logger *log.Logger) error {
	// One long-lived engine per deployment: request handlers share its
	// worker parallelism and pooled DP scratch buffers.
	engine, err := pta.New(
		pta.WithParallelism(parallel),
		pta.WithScratchPool(pta.NewScratchPool()),
	)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Engine:       engine,
		CacheEntries: cache,
		Timeout:      timeout,
		MaxBodyBytes: maxBody,
		MaxInflight:  inflight,
		Logger:       logger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on http://%s (parallel=%d cache=%d timeout=%v)",
		ln.Addr(), parallel, cache, timeout)
	if err := srv.Serve(ctx, ln); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logger.Printf("shut down cleanly")
	return nil
}
