// Command ptaserve is the HTTP/JSON compression daemon: a network boundary
// around the pta Engine with a shared LRU matrix cache, so many clients can
// request many resolutions of hot series cheaply (internal/serve holds the
// handlers; docs/ARCHITECTURE.md the design).
//
// Endpoints:
//
//	POST /v1/compress       one series, one plan
//	POST /v1/compress/many  one series, several plans (amortized)
//	GET  /v1/strategies     the strategy registry
//	GET  /v1/stats          cache, admission, spill and request counters
//	GET  /metrics           Prometheus text-format exposition
//	GET  /healthz           liveness
//
// SIGINT/SIGTERM drain in-flight requests (bounded by -drain) and exit 0
// (graceful shutdown), so process managers can roll the daemon without
// dropping evaluations. With -spill-dir, warm DP matrices persist across
// restarts: a relaunched daemon answers previously-warm series as cache
// hits immediately.
//
// Example session:
//
//	ptaserve -addr :8080 -parallel 4 -spill-dir /var/cache/ptaserve &
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/compress -d @request.json
//
// With -workers the daemon additionally coordinates a fleet of other
// ptaserve processes: the "dist" strategy shards each series across the
// listed workers by consistent hashing and gathers an exact, bit-identical
// result (internal/dist; docs/ARCHITECTURE.md § Distribution):
//
//	ptaserve -addr :8081 -spill-dir /var/cache/w1 &
//	ptaserve -addr :8082 -spill-dir /var/cache/w2 &
//	ptaserve -addr :8080 -workers http://localhost:8081,http://localhost:8082 &
//
// With -peers the daemons form a shared warm tier: on a cache miss each
// worker asks its peers for the content-addressed matrix blob before paying
// the cold DP fill, so a restarted worker with an empty spill volume
// re-warms from the fleet instead of recomputing:
//
//	ptaserve -addr :8081 -spill-dir /var/cache/w1 -peers http://localhost:8082 &
//	ptaserve -addr :8082 -spill-dir /var/cache/w2 -peers http://localhost:8081 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/pta"
)

// splitList parses a comma-separated URL list flag, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// options carries every flag so tests drive run() without a flag set.
type options struct {
	addr      string
	parallel  int
	cache     int
	timeout   time.Duration
	maxBody   int64
	inflight  int
	drain     time.Duration
	spillDir  string
	maxCells  int64
	admission string
	workers   string
	peers     string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address (host:port, :0 picks a free port)")
	flag.IntVar(&opts.parallel, "parallel", 1, "engine worker goroutines for group-parallel strategies (0 = all cores)")
	flag.IntVar(&opts.cache, "cache", 64, "matrix cache capacity in entries")
	flag.DurationVar(&opts.timeout, "timeout", 30*time.Second, "per-request deadline (requests may tighten it with timeout_ms)")
	flag.Int64Var(&opts.maxBody, "max-body", 8<<20, "request body limit in bytes")
	flag.IntVar(&opts.inflight, "inflight", 0, "max concurrently evaluated compressions (0 = 2×GOMAXPROCS)")
	flag.DurationVar(&opts.drain, "drain", 10*time.Second, "graceful-shutdown drain window for in-flight requests")
	flag.StringVar(&opts.spillDir, "spill-dir", "", "directory for persistent matrix-cache spill (empty = disabled)")
	flag.Int64Var(&opts.maxCells, "max-cells", 0, "admission budget: max estimated DP cells per request (0 = unlimited)")
	flag.StringVar(&opts.admission, "admission", "reject", "over-budget policy: reject (429) or queue (serialize)")
	flag.StringVar(&opts.workers, "workers", "", "comma-separated ptaserve worker base URLs enabling the \"dist\" strategy (this daemon coordinates)")
	flag.StringVar(&opts.peers, "peers", "", "comma-separated peer ptaserve base URLs forming a shared warm tier (cache misses try peers before the cold DP fill)")
	flag.Parse()

	logger := log.New(os.Stderr, "ptaserve: ", log.LstdFlags)
	if err := run(opts, logger); err != nil {
		logger.Fatal(err)
	}
}

// run wires the engine and server and serves until SIGINT/SIGTERM.
func run(opts options, logger *log.Logger) error {
	// One long-lived engine per deployment: request handlers share its
	// worker parallelism and pooled DP scratch buffers.
	engine, err := pta.New(
		pta.WithParallelism(opts.parallel),
		pta.WithScratchPool(pta.NewScratchPool()),
	)
	if err != nil {
		return err
	}
	// With -workers this daemon also coordinates the distributed tier: the
	// "dist" strategy scatters to the fleet, and the coordinator's
	// ptadist_* families share this daemon's /metrics exposition.
	reg := obs.NewRegistry()
	if opts.workers != "" {
		co, err := dist.New(
			dist.WithWorkers(splitList(opts.workers)...),
			dist.WithRegistry(reg),
		)
		if err != nil {
			return err
		}
		dist.Activate(co)
		logger.Printf("dist strategy enabled over %d workers", len(co.Workers()))
	}
	srv, err := serve.New(serve.Config{
		Engine:            engine,
		CacheEntries:      opts.cache,
		Timeout:           opts.timeout,
		MaxBodyBytes:      opts.maxBody,
		MaxInflight:       opts.inflight,
		DrainTimeout:      opts.drain,
		SpillDir:          opts.spillDir,
		Peers:             splitList(opts.peers),
		AdmissionMaxCells: opts.maxCells,
		AdmissionPolicy:   opts.admission,
		Logger:            logger,
		Metrics:           reg,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on http://%s (parallel=%d cache=%d timeout=%v spill=%q max-cells=%d)",
		ln.Addr(), opts.parallel, opts.cache, opts.timeout, opts.spillDir, opts.maxCells)
	if err := srv.Serve(ctx, ln); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logger.Printf("shut down cleanly")
	return nil
}
